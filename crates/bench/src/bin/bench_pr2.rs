//! `bench-pr2` — emits `BENCH_pr2.json`: measured **single-call vs batched**
//! QPS (and matrix throughput in pairs/sec) for BiDijkstra, DCH, PMHL, and
//! PostMHL on the 64×64 grid, next to the Lemma 1 model numbers.
//!
//! The serving modes run the same concurrent engine, same seeds, same
//! maintenance schedule; what differs is how the distances are requested:
//!
//! * `single-call` — every distance is its own request: one snapshot
//!   lookup, one scratch checkout, and one `QueryView::distance` call per
//!   pair (the pre-session pattern);
//! * `one-to-many(64)` — the **batched** workload this PR introduces:
//!   clients ask for 64 distances from one origin per request (the
//!   dispatch shape), answered by a session's `one_to_many` — a single
//!   truncated forward search (BiDijkstra), a shared forward upward search
//!   (DCH / PostMHL-PCH), or a source-cached label loop (PMHL) — so
//!   throughput is counted in pairs/sec over the same number of distances;
//! * `batched(64)` — session point-to-point: the *same random-pair*
//!   workload as single-call, drained 64 at a time through one session
//!   (isolates the per-call overhead sessions remove; for search-heavy
//!   algorithms whose per-query cost is ~100 µs this is statistical parity
//!   by construction, so the headline batched number is the one-to-many
//!   workload, which batching can actually exploit);
//! * `matrix(8x8)` — 8×8 distance matrices per request.
//!
//! The Lemma 1 model harness replays the full `|U| = 200` maintenance load.
//! The mode-comparison engine runs are *serving-dominated*: they replay one
//! empty update batch (stages still publish, so session re-pinning is
//! exercised) and then serve for a fixed pause. The point of the comparison
//! is the read path; under heavy repair the run-to-run variance of the
//! repair itself (PMHL's `t_u` is seconds at `|U| = 200`) would swamp the
//! per-query difference being measured. Because an empty batch leaves the
//! index untouched, one maintainer instance is shared by every comparison
//! run, which removes build-to-build variance as well.
//!
//! The modes run round-robin `reps` times and the best run per mode counts
//! (throughput is a capacity claim, so the max over repetitions is the
//! right estimator).
//!
//! Usage: `cargo run --release -p htsp-bench --bin bench-pr2 [--smoke] [output.json]`
//!
//! `--smoke` shrinks the graph and the run so CI can prove the batched
//! front-end end to end in seconds (and writes to /tmp by default).

use htsp_baselines::{BiDijkstraBaseline, DchBaseline};
use htsp_bench::json::Json;
use htsp_core::{Pmhl, PmhlConfig, PostMhl, PostMhlConfig};
use htsp_graph::gen::{grid_with_diagonals, WeightRange};
use htsp_graph::IndexMaintainer;
use htsp_throughput::{
    EngineReport, QueryEngine, RoadNetworkServer, SystemConfig, ThroughputHarness, WorkloadKind,
};
use std::time::Duration;

struct BenchConfig {
    smoke: bool,
    reps: usize,
    batches: usize,
    update_volume: usize,
    pause: Duration,
    workers: usize,
}

fn engine(cfg: &BenchConfig, workload: WorkloadKind, seed: u64) -> QueryEngine {
    QueryEngine::builder()
        .workers(cfg.workers)
        .batches(cfg.batches)
        .update_volume(cfg.update_volume)
        .pause_between_batches(cfg.pause)
        .workload(workload)
        .seed(seed)
        .build()
}

/// Runs every mode `reps` times round-robin on one shared server
/// (sound because the comparison batches are empty — see module docs) and
/// returns the highest-QPS report per mode.
fn compare_modes(
    cfg: &BenchConfig,
    server: &RoadNetworkServer,
    modes: &[WorkloadKind],
) -> Vec<EngineReport> {
    let mut best: Vec<Option<EngineReport>> = modes.iter().map(|_| None).collect();
    for rep in 0..cfg.reps {
        for (i, &mode) in modes.iter().enumerate() {
            let report = engine(cfg, mode, 7 + rep as u64).run(server);
            eprintln!(
                "bench-pr2:   rep {rep} {:<14} {:>12.0} pairs/s",
                mode.label(),
                report.measured_qps
            );
            let better = best[i]
                .as_ref()
                .map(|b| report.measured_qps > b.measured_qps)
                .unwrap_or(true);
            if better {
                best[i] = Some(report);
            }
        }
    }
    best.into_iter().map(|b| b.expect("reps >= 1")).collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| {
            if smoke {
                "/tmp/BENCH_pr2_smoke.json".to_string()
            } else {
                "BENCH_pr2.json".to_string()
            }
        });
    let cfg = if smoke {
        BenchConfig {
            smoke: true,
            reps: 1,
            batches: 1,
            update_volume: 0,
            pause: Duration::from_millis(40),
            workers: 2,
        }
    } else {
        BenchConfig {
            smoke: false,
            reps: 5,
            batches: 1,
            update_volume: 0,
            pause: Duration::from_millis(900),
            workers: 2,
        }
    };

    // The ISSUE-mandated workload: a 64×64 grid road network (16×16 in
    // smoke mode so CI finishes in seconds).
    let side = if cfg.smoke { 16 } else { 64 };
    let road = grid_with_diagonals(side, side, WeightRange::new(1, 100), 0.1, 42);
    eprintln!(
        "bench-pr2: {side}x{side} grid, |V| = {}, |E| = {}{}",
        road.num_vertices(),
        road.num_edges(),
        if cfg.smoke { " (smoke)" } else { "" }
    );

    // The Lemma 1 model replays the paper-scale |U| = 200 maintenance load;
    // the mode-comparison engine runs use cfg.update_volume (see module docs).
    let system = SystemConfig {
        update_volume: if cfg.smoke { 40 } else { 200 },
        update_interval: 120.0,
        max_response_time: 1.0,
        query_sample: if cfg.smoke { 40 } else { 100 },
    };
    let harness = ThroughputHarness::new(system, 7, if cfg.smoke { 1 } else { 2 });

    type Factory<'a> = Box<dyn Fn() -> Box<dyn IndexMaintainer> + 'a>;
    let algorithms: Vec<(&'static str, Factory)> = vec![
        (
            "BiDijkstra",
            Box::new(|| Box::new(BiDijkstraBaseline::new(&road))),
        ),
        ("DCH", Box::new(|| Box::new(DchBaseline::build(&road)))),
        (
            "PMHL",
            Box::new(|| {
                Box::new(Pmhl::build(
                    &road,
                    PmhlConfig {
                        num_partitions: 8,
                        num_threads: 4,
                        seed: 1,
                    },
                ))
            }),
        ),
        (
            "PostMHL",
            Box::new(|| Box::new(PostMhl::build(&road, PostMhlConfig::default()))),
        ),
    ];

    let single = WorkloadKind::SingleCall;
    let batched = WorkloadKind::OneToMany { fanout: 64 };
    let session_p2p = WorkloadKind::Batched { batch_size: 64 };
    let matrix = WorkloadKind::Matrix { side: 8 };

    let mut rows = Vec::new();
    let mut regressions = Vec::new();
    for (name, build) in &algorithms {
        eprintln!("bench-pr2: {name}: model harness...");
        let server = RoadNetworkServer::host(&road, build());
        let model = harness.run(&server);
        server.shutdown();

        eprintln!("bench-pr2: {name}: comparing serving modes...");
        let server = RoadNetworkServer::host(&road, build());
        let reports = compare_modes(&cfg, &server, &[single, batched, session_p2p, matrix]);
        server.shutdown();
        let (single_report, batched_report, p2p_report, matrix_report) =
            match <[EngineReport; 4]>::try_from(reports) {
                Ok([s, b, p, m]) => (s, b, p, m),
                Err(_) => unreachable!("four modes in, four reports out"),
            };

        let speedup = batched_report.measured_qps / single_report.measured_qps;
        eprintln!(
            "bench-pr2: {name}: single {:.0} q/s | batched {:.0} pairs/s ({speedup:.2}x) | \
             session-p2p {:.0} q/s | matrix {:.0} pairs/s | Lemma 1 model {:.0} q/s",
            single_report.measured_qps,
            batched_report.measured_qps,
            p2p_report.measured_qps,
            matrix_report.measured_qps,
            model.throughput(),
        );
        if batched_report.measured_qps < single_report.measured_qps {
            regressions.push(*name);
        }

        rows.push(Json::Obj(vec![
            ("algorithm", Json::Str(name.to_string())),
            ("lemma1_qps", Json::Num(model.lemma1_throughput)),
            ("staged_qps", Json::Num(model.staged_throughput)),
            ("modeled_qps", Json::Num(model.throughput())),
            ("avg_update_time_s", Json::Num(model.avg_update_time)),
            ("avg_query_time_us", Json::Num(model.avg_query_time * 1e6)),
            ("single_call_qps", Json::Num(single_report.measured_qps)),
            (
                "single_call_queries",
                Json::Int(single_report.total_queries),
            ),
            ("batched_qps", Json::Num(batched_report.measured_qps)),
            ("batched_pairs", Json::Int(batched_report.total_queries)),
            ("batched_over_single", Json::Num(speedup)),
            (
                "session_point_to_point_qps",
                Json::Num(p2p_report.measured_qps),
            ),
            ("matrix_pairs_per_s", Json::Num(matrix_report.measured_qps)),
            ("matrix_pairs", Json::Int(matrix_report.total_queries)),
            ("query_workers", Json::Int(single_report.num_workers as u64)),
        ]));
    }

    let doc = Json::Obj(vec![
        ("bench", Json::Str("pr2".to_string())),
        (
            "description",
            Json::Str(
                "Single-call vs session-batched measured QPS (and matrix pairs/sec) after the \
                 QuerySession/DistanceService redesign, next to the Lemma 1 model"
                    .to_string(),
            ),
        ),
        (
            "graph",
            Json::Obj(vec![
                (
                    "kind",
                    Json::Str(format!("grid_with_diagonals {side}x{side}")),
                ),
                ("vertices", Json::Int(road.num_vertices() as u64)),
                ("edges", Json::Int(road.num_edges() as u64)),
            ]),
        ),
        (
            "workloads",
            Json::Obj(vec![
                ("single_call", Json::Str(single.label())),
                ("batched", Json::Str(batched.label())),
                ("session_point_to_point", Json::Str(session_p2p.label())),
                ("matrix", Json::Str(matrix.label())),
                ("reps_best_of", Json::Int(cfg.reps as u64)),
            ]),
        ),
        (
            "system",
            Json::Obj(vec![
                ("update_volume", Json::Int(system.update_volume as u64)),
                ("update_interval_s", Json::Num(system.update_interval)),
                ("max_response_time_s", Json::Num(system.max_response_time)),
                ("compare_update_volume", Json::Int(cfg.update_volume as u64)),
                ("compare_pause_ms", Json::Int(cfg.pause.as_millis() as u64)),
            ]),
        ),
        ("algorithms", Json::Arr(rows)),
    ]);

    std::fs::write(&out_path, doc.to_string_pretty()).expect("write BENCH_pr2.json");
    eprintln!("bench-pr2: wrote {out_path}");
    if !regressions.is_empty() {
        eprintln!(
            "bench-pr2: WARNING: batched QPS below single-call for {regressions:?} \
             (sessions must not regress the per-call path)"
        );
        if !cfg.smoke {
            std::process::exit(1);
        }
    }
}
