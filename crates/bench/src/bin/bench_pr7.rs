//! `bench-pr7` — emits `BENCH_pr7.json`: the open-loop knee sweep. For each
//! algorithm × deployment (single `RoadNetworkServer` vs 4-shard
//! `ShardedFleet`), a seeded Poisson open-loop generator offers a weighted
//! request mix while a paced update stream mutates the graph, and a binary
//! search finds the **knee**: the highest offered rate whose p95
//! submit-to-answer latency still meets the SLO with negligible loss under
//! the shedding admission policy.
//!
//! Around the knee the bench records the three rows that show why
//! admission control exists:
//!
//! * **below-knee (shed)** — ~0.7× knee: p95 meets the SLO, nothing sheds;
//! * **above-knee (block)** — past saturation (≥2× knee and ≥1.25× the
//!   calibrated closed-loop capacity) under the legacy unbounded queue: the
//!   backlog grows for the whole run, so p95 diverges far past the SLO;
//! * **above-knee (shed)** — the same rate with a bounded queue: p95 stays
//!   bounded by the queue depth while the excess is shed (nonzero shed
//!   count), i.e. goodput is preserved at the cost of explicit rejections.
//!
//! Exactness is always asserted: after quiescing the update stream, sampled
//! batches answered through a fresh service must equal a Dijkstra run on
//! the served snapshot's own graph. In `--smoke` mode the hard gates are
//! the exactness check and the below-knee shed run meeting its SLO; the
//! block-vs-shed divergence is asserted only in full mode (CI boxes are too
//! noisy to gate on wall-clock tails).
//!
//! Usage: `cargo run --release -p htsp-bench --bin bench-pr7 [--smoke] [output.json]`

use htsp_bench::json::Json;
use htsp_graph::{gen, Graph, Query, QuerySet, UpdateGenerator};
use htsp_search::dijkstra_distance;
use htsp_throughput::{
    find_knee, run_open_loop_with_telemetry, validate_json, validate_prometheus, AdmissionPolicy,
    AlgorithmKind, ArrivalProcess, CacheConfig, DistanceService, FleetConfig, LoadProfile,
    LoadReport, QueryBatch, RequestClass, RequestMix, RoadNetworkServer, ShardedFleet, SloTarget,
    TelemetryHub,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct BenchConfig {
    smoke: bool,
    side: usize,
    algorithms: Vec<AlgorithmKind>,
    shards: usize,
    /// Query workers per measured service.
    workers: usize,
    /// p95 SLO bound.
    slo: Duration,
    /// Shed policy queue bound.
    max_depth: usize,
    /// Open-loop measurement window per probe.
    window: Duration,
    /// Binary-search iterations for the knee.
    knee_iters: usize,
    /// Paced update stream rate (updates/second) during every measurement.
    update_rate: f64,
    /// Offered-rate search bracket ceiling (what the generators can pace
    /// honestly on a laptop; the knee reports `>= hi` by saturating there).
    max_offer: f64,
    /// Where the mix scaling aims the knee (requests/second): well inside
    /// the honestly-paceable range.
    target_knee: f64,
    /// Sampled point-to-point pairs for the exactness gate.
    verify_pairs: usize,
}

/// The service under test: either a fresh `DistanceService` over a single
/// server's publisher, or a fresh fleet-backed service. Fresh per
/// measurement because `max_queue_depth` is a lifetime maximum and the
/// admission policy is fixed at service start.
enum Deployment<'a> {
    Single(&'a RoadNetworkServer),
    Fleet(&'a ShardedFleet),
}

impl Deployment<'_> {
    fn label(&self) -> String {
        match self {
            Deployment::Single(_) => "single".to_string(),
            Deployment::Fleet(f) => format!("fleet{}", f.num_shards()),
        }
    }

    fn service(&self, workers: usize, policy: AdmissionPolicy) -> DistanceService {
        match self {
            Deployment::Single(server) => DistanceService::with_telemetry(
                Arc::clone(server.publisher()),
                workers,
                server.cache().cloned(),
                policy,
                Arc::clone(server.telemetry()),
            ),
            Deployment::Fleet(fleet) => fleet.start_query_service(workers, policy),
        }
    }

    /// The deployment-wide telemetry hub (shared between the single server
    /// and the fleet's router tier; see `main`).
    fn hub(&self) -> &Arc<TelemetryHub> {
        match self {
            Deployment::Single(server) => server.telemetry(),
            Deployment::Fleet(fleet) => fleet.telemetry(),
        }
    }

    /// A clone of the currently served graph (the mirror the paced update
    /// stream drifts from).
    fn graph(&self) -> Graph {
        match self {
            Deployment::Single(server) => server.snapshot().graph().clone(),
            Deployment::Fleet(fleet) => fleet.session().graph().clone(),
        }
    }

    fn submit_update(&self, u: htsp_graph::EdgeUpdate) {
        match self {
            Deployment::Single(server) => {
                server.submit(u);
            }
            Deployment::Fleet(fleet) => {
                fleet.submit(u);
            }
        }
    }

    fn wait_idle(&self) {
        match self {
            Deployment::Single(server) => server.feed().wait_idle(),
            Deployment::Fleet(fleet) => fleet.wait_idle(),
        }
    }

    fn index_bytes(&self) -> usize {
        match self {
            Deployment::Single(server) => server.with_index(|i| i.index_size_bytes()),
            Deployment::Fleet(fleet) => fleet.index_size_bytes(),
        }
    }
}

/// The request mix every probe offers: point-to-point bundles, one-to-many
/// fans, matrices, and a Zipf hot-pair class. `scale` multiplies the batch
/// sizes so the per-request cost can be matched to each algorithm's speed —
/// sleep-based generators pace a few hundred to a few thousand requests per
/// second honestly, so fast indexes get proportionally heavier batches to
/// land the knee inside that range.
fn request_mix(scale: usize) -> RequestMix {
    let scale = scale.max(1);
    let side = ((4.0 * (scale as f64).sqrt()).round() as usize).max(4);
    RequestMix::new(vec![
        (RequestClass::PointToPoint { bundle: 8 * scale }, 4.0),
        (RequestClass::OneToMany { fanout: 12 * scale }, 2.0),
        (RequestClass::Matrix { side }, 2.0),
        (
            RequestClass::HotPairs {
                universe: 64,
                zipf_s: 1.1,
            },
            2.0,
        ),
    ])
}

/// One open-loop measurement: fresh service under `policy`, paced update
/// stream running for the whole window, every ticket resolved.
fn measure(
    dep: &Deployment,
    cfg: &BenchConfig,
    pool: &[Query],
    scale: usize,
    rate: f64,
    policy: AdmissionPolicy,
    seed: u64,
) -> LoadReport {
    let service = dep.service(cfg.workers, policy);
    let profile = LoadProfile {
        arrivals: ArrivalProcess::Poisson { rate },
        mix: request_mix(scale),
        clients: 4,
        duration: cfg.window,
        seed,
        slo: SloTarget::p95(cfg.slo),
        // Explicit hybrid pacing: sleep to within 200 µs of each arrival,
        // then spin. At the native knees of the fast indexes (tens of
        // thousands of req/s) a sleeping pacer under-offers and the sweep
        // would silently measure the pacer, not the index.
        pacer: htsp_throughput::Pacer::Hybrid {
            spin_window: Duration::from_micros(200),
        },
    };
    let stop = AtomicBool::new(false);
    let report = std::thread::scope(|scope| {
        // The paced update stream: one fresh update every 1/update_rate
        // seconds, generated against a drifting mirror of the served graph
        // so old weights stay truthful.
        let updates = scope.spawn(|| {
            let mut mirror = dep.graph();
            let mut gen = UpdateGenerator::new(seed ^ 0xfeed);
            let interval = Duration::from_secs_f64(1.0 / cfg.update_rate);
            let start = Instant::now();
            let mut i = 0u32;
            while !stop.load(Ordering::Relaxed) {
                let due = start + interval * i;
                std::thread::sleep(due.saturating_duration_since(Instant::now()));
                let batch = gen.generate(&mirror, 1);
                mirror.apply_batch(&batch);
                for &u in batch.as_slice() {
                    dep.submit_update(u);
                }
                i += 1;
            }
            i
        });
        let report = run_open_loop_with_telemetry(&service, &profile, pool, Some(dep.hub()));
        stop.store(true, Ordering::Relaxed);
        updates.join().expect("update stream panicked");
        report
    });
    service.shutdown();
    dep.wait_idle();
    report
}

/// Closed-loop calibration: how many mix requests per second the service
/// answers synchronously, used to size the mix and bracket the knee search.
fn calibrate(dep: &Deployment, cfg: &BenchConfig, pool: &[Query], scale: usize) -> f64 {
    let service = dep.service(cfg.workers, AdmissionPolicy::Block);
    let mut stream = htsp_throughput::OpenLoopStream::new(
        ArrivalProcess::Constant { rate: 1.0 },
        request_mix(scale),
        pool,
        7,
        0,
    );
    // Warm up sessions, then time a synchronous answer loop.
    for _ in 0..8 {
        service.answer(stream.next_request().batch);
    }
    let t = Instant::now();
    let mut n = 0u32;
    while t.elapsed() < Duration::from_millis(if cfg.smoke { 120 } else { 300 }) {
        service.answer(stream.next_request().batch);
        n += 1;
    }
    let single_thread_rps = n as f64 / t.elapsed().as_secs_f64();
    service.shutdown();
    // `answer()` is one-at-a-time; the service has `workers` lanes.
    single_thread_rps * cfg.workers as f64
}

/// Post-quiesce exactness gate: a fresh Block service must answer sampled
/// point-to-point bundles exactly as Dijkstra on the served graph.
fn verify_exact(dep: &Deployment, cfg: &BenchConfig, failures: &mut Vec<String>, tag: &str) {
    dep.wait_idle();
    let service = dep.service(cfg.workers, AdmissionPolicy::Block);
    let graph = dep.graph();
    let queries = QuerySet::random(&graph, cfg.verify_pairs, 4242);
    for chunk in queries.as_slice().chunks(8) {
        let answer = service.answer(QueryBatch::PointToPoint(chunk.to_vec()));
        for (q, &got) in chunk.iter().zip(&answer.distances) {
            let expect = dijkstra_distance(&graph, q.source, q.target);
            if got != expect {
                failures.push(format!(
                    "{tag}: d({:?}, {:?}) = {got:?}, Dijkstra says {expect:?}",
                    q.source, q.target
                ));
            }
        }
    }
    service.shutdown();
}

fn run_json(kind: &str, report: &LoadReport) -> Json {
    Json::Obj(vec![
        ("kind", Json::Str(kind.to_string())),
        ("offered_rate_rps", Json::Num(report.offered_rate)),
        ("offered", Json::Int(report.offered)),
        ("answered", Json::Int(report.answered)),
        ("answered_pairs", Json::Int(report.answered_pairs)),
        ("shed", Json::Int(report.shed)),
        ("expired", Json::Int(report.expired)),
        ("goodput_rps", Json::Num(report.goodput())),
        (
            "p50_ms",
            Json::Num(report.latency.quantile(0.50).as_secs_f64() * 1e3),
        ),
        (
            "p95_ms",
            Json::Num(report.latency.quantile(0.95).as_secs_f64() * 1e3),
        ),
        (
            "p99_ms",
            Json::Num(report.latency.quantile(0.99).as_secs_f64() * 1e3),
        ),
        (
            "mean_ms",
            Json::Num(report.latency.mean().as_secs_f64() * 1e3),
        ),
        ("max_queue_depth", Json::Int(report.max_queue_depth as u64)),
        ("slo_pass", Json::Str(report.verdict.passed.to_string())),
    ])
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| {
            if smoke {
                "/tmp/BENCH_pr7_smoke.json".to_string()
            } else {
                "BENCH_pr7.json".to_string()
            }
        });
    let cfg = if smoke {
        BenchConfig {
            smoke: true,
            side: 16,
            algorithms: vec![AlgorithmKind::Dch],
            shards: 4,
            workers: 2,
            slo: Duration::from_millis(150),
            max_depth: 16,
            window: Duration::from_millis(250),
            knee_iters: 3,
            update_rate: 20.0,
            max_offer: 3000.0,
            target_knee: 300.0,
            verify_pairs: 32,
        }
    } else {
        BenchConfig {
            smoke: false,
            side: 32,
            algorithms: vec![
                AlgorithmKind::BiDijkstra,
                AlgorithmKind::Dch,
                AlgorithmKind::PostMhl,
            ],
            shards: 4,
            workers: 2,
            // Loose enough that the repair-stall latency floor of the
            // heaviest index (PostMHL re-repairs continuously at this update
            // rate) clears it below the knee, tight enough that Block's
            // above-knee backlog blows through it.
            slo: Duration::from_millis(150),
            max_depth: 16,
            window: Duration::from_millis(500),
            knee_iters: 5,
            update_rate: 40.0,
            // With the 32x scale cap and hybrid pacing, a fast index's knee
            // can land an order of magnitude above the old 6k ceiling; the
            // bracket must be allowed to reach it.
            max_offer: 48_000.0,
            target_knee: 600.0,
            verify_pairs: 64,
        }
    };
    let shed = AdmissionPolicy::Shed {
        max_depth: cfg.max_depth,
    };

    let road = gen::grid(cfg.side, cfg.side, gen::WeightRange::new(1, 100), 42);
    eprintln!(
        "bench-pr7: {0}x{0} grid, |V| = {1}, |E| = {2}{3}",
        cfg.side,
        road.num_vertices(),
        road.num_edges(),
        if cfg.smoke { " (smoke)" } else { "" }
    );
    let pool: Vec<Query> = QuerySet::random(&road, 256, 17).as_slice().to_vec();

    let mut failures: Vec<String> = Vec::new();
    let mut rows = Vec::new();
    for &kind in &cfg.algorithms {
        eprintln!(
            "bench-pr7: building {kind:?} single server and {}-shard fleet...",
            cfg.shards
        );
        // One hub for the whole deployment pair: the single server's
        // ingest/stage/publish/admission/cache metrics and the fleet's
        // router-tier metrics land in the same registry, so one snapshot
        // covers the full pipeline (the telemetry gate below).
        let hub = Arc::new(TelemetryHub::new());
        let server = RoadNetworkServer::builder()
            .algorithm(kind)
            .query_workers(0)
            .result_cache(CacheConfig::with_capacity(4096))
            .telemetry(Arc::clone(&hub))
            .start(&road);
        let fleet = ShardedFleet::start_with_telemetry(
            &road,
            FleetConfig::new(cfg.shards, kind),
            Arc::clone(&hub),
        );

        for dep in [Deployment::Single(&server), Deployment::Fleet(&fleet)] {
            let tag = format!("{}/{}", format!("{kind:?}").to_lowercase(), dep.label());
            // Two-pass calibration: probe with the base mix, scale the
            // batch sizes so the knee lands near `target_knee`, then
            // re-measure the scaled mix for the search bracket.
            // The scale cap is 32 (down from the pre-hybrid 256): with the
            // hybrid pacer the generator holds its schedule at native rates,
            // so fast indexes (PostMHL label lookups calibrate in the
            // hundreds of thousands of req/s) are measured near their native
            // knee instead of being folded into 256-query mega-batches whose
            // weight busts the SLO on any degraded stage. The residual cap
            // only guards the slowest repair windows.
            let base_capacity = calibrate(&dep, &cfg, &pool, 1);
            let scale = ((base_capacity / cfg.target_knee).ceil() as usize).clamp(1, 32);
            let capacity = if scale == 1 {
                base_capacity
            } else {
                calibrate(&dep, &cfg, &pool, scale)
            };
            let hi = (capacity * 2.0).min(cfg.max_offer);
            let lo = (capacity * 0.05).max(5.0).min(hi * 0.25);
            eprintln!(
                "bench-pr7: {tag}: capacity ~{capacity:.0} req/s at mix scale {scale} \
                 (base {base_capacity:.0}), knee bracket [{lo:.0}, {hi:.0}]"
            );
            let mut probes = Vec::new();
            let knee = find_knee(lo, hi, cfg.knee_iters, |rate| {
                let report = measure(&dep, &cfg, &pool, scale, rate, shed, 1000 + rate as u64);
                let pass = report.verdict.passed && report.loss_fraction() <= 0.01;
                eprintln!(
                    "bench-pr7: {tag}: probe {rate:>6.0} req/s -> p95 {:>7.2} ms, \
                     shed {:>4}, {}",
                    report.latency.quantile(0.95).as_secs_f64() * 1e3,
                    report.shed,
                    if pass { "pass" } else { "fail" },
                );
                probes.push(run_json("knee-probe", &report));
                pass
            });
            eprintln!("bench-pr7: {tag}: knee ~{knee:.0} req/s");

            // The knee search is conservative (a probe fails on transient
            // shed spikes, not just the SLO), so "2x knee" alone can still
            // sit under true capacity. The divergence evidence is taken at a
            // rate that also clears the closed-loop calibration — measured
            // quiesced, hence an overestimate of what's sustainable under
            // the update stream — so it is genuinely past saturation.
            let above = (knee * 2.0).max(capacity * 1.25).min(cfg.max_offer);
            let below = measure(&dep, &cfg, &pool, scale, knee * 0.7, shed, 7001);
            let above_block = measure(
                &dep,
                &cfg,
                &pool,
                scale,
                above,
                AdmissionPolicy::Block,
                7002,
            );
            let above_shed = measure(&dep, &cfg, &pool, scale, above, shed, 7003);
            eprintln!(
                "bench-pr7: {tag}: below-knee p95 {:.2} ms ({}), above-knee block p95 \
                 {:.2} ms, above-knee shed p95 {:.2} ms with {} shed",
                below.latency.quantile(0.95).as_secs_f64() * 1e3,
                if below.verdict.passed {
                    "SLO pass"
                } else {
                    "SLO FAIL"
                },
                above_block.latency.quantile(0.95).as_secs_f64() * 1e3,
                above_shed.latency.quantile(0.95).as_secs_f64() * 1e3,
                above_shed.shed,
            );

            // Gate (both modes): the below-knee shedding run must meet its
            // p95 SLO — this is the contract the knee certifies.
            if !below.verdict.passed {
                failures.push(format!(
                    "{tag}: below-knee shed run at {:.0} req/s violates the p95 SLO: {:?}",
                    knee * 0.7,
                    below.latency.quantile(0.95)
                ));
            }
            // Gate (full mode): above the knee, Block's tail must diverge
            // past the SLO while Shed stays within it and sheds something.
            let block_p95 = above_block.latency.quantile(0.95);
            let shed_p95 = above_shed.latency.quantile(0.95);
            if !cfg.smoke {
                if block_p95 <= cfg.slo {
                    failures.push(format!(
                        "{tag}: Block at {above:.0} req/s should blow the SLO but p95 is {block_p95:?}"
                    ));
                }
                if above_shed.shed == 0 {
                    failures.push(format!("{tag}: Shed at {above:.0} req/s shed nothing"));
                }
                if shed_p95 > block_p95 {
                    failures.push(format!(
                        "{tag}: Shed p95 {shed_p95:?} not below Block p95 {block_p95:?}"
                    ));
                }
            }
            verify_exact(&dep, &cfg, &mut failures, &tag);

            let fleet_ingest = match &dep {
                Deployment::Single(_) => Json::Str("n/a".to_string()),
                Deployment::Fleet(f) => {
                    let r = f.report();
                    Json::Obj(vec![
                        ("ingest_bound", Json::Int(r.ingest_bound as u64)),
                        ("max_ingest_depth", Json::Int(r.max_ingest_depth)),
                        ("updates_shed", Json::Int(r.updates_shed)),
                    ])
                }
            };
            rows.push(Json::Obj(vec![
                ("algorithm", Json::Str(format!("{kind:?}").to_lowercase())),
                ("deployment", Json::Str(dep.label())),
                ("index_bytes", Json::Int(dep.index_bytes() as u64)),
                ("mix_scale", Json::Int(scale as u64)),
                ("closed_loop_capacity_rps", Json::Num(capacity)),
                ("knee_rps", Json::Num(knee)),
                ("knee_probes", Json::Arr(probes)),
                (
                    "runs",
                    Json::Arr(vec![
                        run_json("below-knee-shed", &below),
                        run_json("above-knee-block", &above_block),
                        run_json("above-knee-shed", &above_shed),
                    ]),
                ),
                ("fleet_ingest", fleet_ingest),
            ]));
        }
        // Telemetry gate (both modes): one snapshot over the shared hub
        // must export valid Prometheus exposition covering every pipeline
        // family, valid Chrome trace JSON, and balanced spans — and the
        // knee runs must have filled the maintenance-stage histograms.
        let snap = hub.snapshot();
        if let Err(e) = validate_prometheus(&snap.prometheus) {
            failures.push(format!("{kind:?}: invalid Prometheus exposition: {e}"));
        }
        if let Err(e) = validate_json(&snap.chrome_trace) {
            failures.push(format!("{kind:?}: invalid Chrome trace JSON: {e}"));
        }
        if !snap.spans_balanced() {
            failures.push(format!(
                "{kind:?}: unbalanced spans: {} opened, {} closed",
                snap.spans_opened, snap.spans_closed
            ));
        }
        for family in [
            "htsp_ingest_",
            "htsp_stage_seconds",
            "htsp_publish_",
            "htsp_admission_",
            "htsp_cache_",
            "htsp_fleet_",
            "htsp_loadgen_",
        ] {
            if !snap.prometheus.contains(family) {
                failures.push(format!(
                    "{kind:?}: snapshot is missing the {family}* metric family"
                ));
            }
        }
        let stage_samples: u64 = hub
            .histogram_values()
            .iter()
            .filter(|(name, _)| name.starts_with("htsp_stage_seconds"))
            .map(|(_, h)| h.count())
            .sum();
        if stage_samples == 0 {
            failures.push(format!(
                "{kind:?}: htsp_stage_seconds histograms are empty after the knee runs"
            ));
        }
        fleet.shutdown();
        server.shutdown();
    }

    let doc = Json::Obj(vec![
        ("bench", Json::Str("pr7".to_string())),
        (
            "description",
            Json::Str(
                "Open-loop knee sweep: seeded Poisson generators offer a weighted \
                 request mix (point-to-point bundles, one-to-many fans, matrices, Zipf \
                 hot pairs) against single-server and 4-shard-fleet DistanceServices \
                 while a paced update stream mutates the graph; a binary search finds \
                 the highest offered rate whose p95 submit-to-answer latency meets the \
                 SLO under the shedding admission policy, and the below/above-knee rows \
                 show Block's tail diverging where Shed stays bounded by rejecting the \
                 excess. Sampled answers are asserted equal to Dijkstra post-quiesce."
                    .to_string(),
            ),
        ),
        (
            "graph",
            Json::Obj(vec![
                ("kind", Json::Str(format!("grid {0}x{0}", cfg.side))),
                ("vertices", Json::Int(road.num_vertices() as u64)),
                ("edges", Json::Int(road.num_edges() as u64)),
            ]),
        ),
        (
            "config",
            Json::Obj(vec![
                ("workers", Json::Int(cfg.workers as u64)),
                ("slo_p95_ms", Json::Int(cfg.slo.as_millis() as u64)),
                ("shed_max_depth", Json::Int(cfg.max_depth as u64)),
                ("window_ms", Json::Int(cfg.window.as_millis() as u64)),
                ("knee_iters", Json::Int(cfg.knee_iters as u64)),
                ("update_rate_per_s", Json::Num(cfg.update_rate)),
                ("max_offer_rps", Json::Num(cfg.max_offer)),
                ("clients", Json::Int(4)),
            ]),
        ),
        ("deployments", Json::Arr(rows)),
    ]);

    std::fs::write(&out_path, doc.to_string_pretty()).expect("write BENCH_pr7.json");
    eprintln!("bench-pr7: wrote {out_path}");
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("bench-pr7: FAILURE: {f}");
        }
        std::process::exit(1);
    }
}
