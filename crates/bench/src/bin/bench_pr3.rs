//! `bench-pr3` — emits `BENCH_pr3.json`: per-stage update latency and
//! copy-on-write clone telemetry (chunks/bytes actually cloned) for PostMHL
//! and PMHL, swept over **change-set size** (`|U|`) and **index size** (grid
//! side), with and without a harness-pinned snapshot outstanding.
//!
//! The point of the measurement: before the chunked-COW storage layer, the
//! first write of every maintenance stage paid an `Arc::make_mut` deep clone
//! of the whole component it touched — O(index size), regardless of `|U|` —
//! because a published snapshot is always outstanding. With `CowVec` /
//! `CowTable` storage the clone volume must
//!
//! 1. **grow with `|U|`** (more affected rows → more chunks cloned), and
//! 2. **stay flat-ish as the index grows** at fixed `|U|` (untouched chunks
//!    are shared, so index size only enters through chunk-size rounding and
//!    the depth of the affected label rows) — i.e. grow strictly slower
//!    than the index itself.
//!
//! Two pinning modes are measured per configuration:
//!
//! * `pinned` — the harness holds a full final-stage `QueryView` across
//!   the whole `apply_batch`, the serving worst case: every mutable
//!   component is shared when its stage first writes it, so the reported
//!   clone volume is the full snapshot-isolation price of the batch.
//! * `unpinned` — only the [`SnapshotPublisher`]'s own transient staged
//!   views exist, each dropped when the next stage publishes. Because every
//!   stage view pins only the components its query machinery reads, most
//!   stage writes find their chunks unshared and the clone volume collapses
//!   — the quantified payoff of per-stage component pinning.
//!
//! The `summary` section computes the headline ratios per `|U|`:
//! `cloned_bytes` growth vs `index_bytes` growth between the smallest and
//! largest grid, plus monotonicity of `cloned_bytes` in `|U|` on the
//! largest grid. The asserted flatness probe is the smallest `|U|` — larger
//! change sets scattered across a laptop-scale table dirty most chunks, at
//! which point chunk-size rounding (every chunk cloned once) dominates and
//! the growth ratios converge to the index ratio again.
//!
//! Usage: `cargo run --release -p htsp-bench --bin bench-pr3 [--smoke] [output.json]`
//!
//! `--smoke` shrinks the sweep so CI can prove the telemetry path end to end
//! in seconds (and writes to /tmp by default).

use htsp_bench::json::Json;
use htsp_core::{Pmhl, PmhlConfig, PostMhl, PostMhlConfig};
use htsp_graph::gen::{grid_with_diagonals, WeightRange};
use htsp_graph::{EdgeId, EdgeUpdate, Graph, IndexMaintainer, SnapshotPublisher, UpdateBatch};

/// A deterministic "traffic drift" batch: `volume` distinct edges each get
/// a +1 weight increase.
///
/// The paper's halve/double protocol is the right *stress* workload, but at
/// laptop-scale grids it saturates the affected label set — a batch of even
/// 10 halved edges changes some ancestor distance of nearly every vertex, so
/// every chunk is legitimately dirty and clone volume cannot distinguish
/// change-set-proportional storage from whole-component cloning. The +1
/// drift keeps the affected label set local, which is exactly the regime the
/// chunked-COW claim is about (and the common real-traffic case: most
/// updates are small travel-time drifts, not road closures).
fn drift_batch(graph: &Graph, volume: usize, salt: u64) -> UpdateBatch {
    let m = graph.num_edges();
    let mut batch = UpdateBatch::new();
    let mut seen = vec![false; m];
    let mut x = salt.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut attempts = 0usize;
    while batch.len() < volume.min(m) && attempts < 64 * m {
        attempts += 1;
        // splitmix-style step, deterministic across runs.
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let idx = ((x >> 33) as usize) % m;
        if seen[idx] {
            continue;
        }
        seen[idx] = true;
        let e = EdgeId::from_index(idx);
        let old = graph.edge_weight(e);
        // +1 increases only: an increase affects exactly the shortest paths
        // that used the edge, keeping the affected label set local. (A
        // decrease opens a new shorter route *through* the edge, which on a
        // small grid perturbs distances towards the top separators for a
        // large fraction of vertices — a genuinely global change set.)
        batch.push(EdgeUpdate::new(e, old, old + 1));
    }
    batch
}

struct RoundResult {
    update_volume: usize,
    pinned: bool,
    total_ms: f64,
    chunks_cloned: u64,
    bytes_cloned: u64,
    stages: Vec<(String, f64)>,
    /// Per publication: (query stage, chunks cloned, bytes cloned).
    publications: Vec<(usize, u64, u64)>,
}

/// Replays one update batch through `maintainer`, optionally holding a
/// final-stage snapshot across the repair, and collects per-stage latency
/// plus the published clone telemetry.
fn run_round(
    maintainer: &mut dyn IndexMaintainer,
    working: &mut Graph,
    salt: &mut u64,
    update_volume: usize,
    pinned: bool,
) -> RoundResult {
    *salt += 1;
    let batch = drift_batch(working, update_volume, *salt);
    working.apply_batch(&batch);
    let publisher = SnapshotPublisher::new(maintainer.current_view());
    // The serving worst case: a session somewhere still reads the
    // pre-batch index for the whole repair.
    let pin = pinned.then(|| maintainer.current_view());
    let timeline = maintainer.apply_batch(working, &batch, &publisher);
    drop(pin);
    let log = publisher.take_log();
    let chunks_cloned: u64 = log.iter().map(|e| e.cow.chunks_cloned).sum();
    let bytes_cloned: u64 = log.iter().map(|e| e.cow.bytes_cloned).sum();
    RoundResult {
        update_volume,
        pinned,
        total_ms: timeline.total().as_secs_f64() * 1e3,
        chunks_cloned,
        bytes_cloned,
        stages: timeline
            .stages
            .iter()
            .map(|s| (s.name.clone(), s.duration.as_secs_f64() * 1e3))
            .collect(),
        publications: log
            .iter()
            .map(|e| (e.stage, e.cow.chunks_cloned, e.cow.bytes_cloned))
            .collect(),
    }
}

fn round_json(r: &RoundResult) -> Json {
    Json::Obj(vec![
        ("update_volume", Json::Int(r.update_volume as u64)),
        (
            "pinned",
            Json::Str(if r.pinned { "pinned" } else { "unpinned" }.to_string()),
        ),
        ("total_update_ms", Json::Num(r.total_ms)),
        ("chunks_cloned", Json::Int(r.chunks_cloned)),
        ("bytes_cloned", Json::Int(r.bytes_cloned)),
        (
            "stages",
            Json::Arr(
                r.stages
                    .iter()
                    .map(|(name, ms)| {
                        Json::Obj(vec![
                            ("name", Json::Str(name.clone())),
                            ("ms", Json::Num(*ms)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "publications",
            Json::Arr(
                r.publications
                    .iter()
                    .map(|&(stage, chunks, bytes)| {
                        Json::Obj(vec![
                            ("query_stage", Json::Int(stage as u64)),
                            ("chunks_cloned", Json::Int(chunks)),
                            ("bytes_cloned", Json::Int(bytes)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

struct GridRun {
    side: usize,
    vertices: usize,
    index_bytes: usize,
    rounds: Vec<RoundResult>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| {
            if smoke {
                "/tmp/BENCH_pr3_smoke.json".to_string()
            } else {
                "BENCH_pr3.json".to_string()
            }
        });
    // Small absolute change sets against growing grids: the claim under test
    // is *clone cost ∝ change set*, which chunk-size rounding hides as soon
    // as |U| scattered edges dirty every chunk of a small table (a 24x24
    // grid's whole distance table is ~9 chunks). |U| = 1 is the cleanest
    // probe: its clone volume must stay at a handful of chunks no matter how
    // large the index grows.
    let sides: Vec<usize> = if smoke {
        vec![10, 16]
    } else {
        vec![32, 48, 64]
    };
    let volumes: Vec<usize> = if smoke { vec![1, 4] } else { vec![1, 4, 16] };
    // Clone volume depends on which edges a round happens to perturb;
    // averaging over several rounds per configuration smooths that out.
    let reps = if smoke { 1 } else { 4 };

    type Factory = fn(&Graph) -> Box<dyn IndexMaintainer>;
    let algorithms: Vec<(&'static str, Factory)> = vec![
        ("PostMHL", |g| {
            Box::new(PostMhl::build(g, PostMhlConfig::default()))
        }),
        ("PMHL", |g| {
            Box::new(Pmhl::build(
                g,
                PmhlConfig {
                    num_partitions: 8,
                    num_threads: 4,
                    seed: 1,
                },
            ))
        }),
    ];

    let mut algo_rows = Vec::new();
    let mut summary_rows = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    for (name, build) in &algorithms {
        let mut grid_runs: Vec<GridRun> = Vec::new();
        for &side in &sides {
            let mut working = grid_with_diagonals(side, side, WeightRange::new(1, 100), 0.1, 42);
            eprintln!(
                "bench-pr3: {name}: building on {side}x{side} (|V| = {})...",
                working.num_vertices()
            );
            let mut maintainer = build(&working);
            let mut salt = 7u64;
            // Warm round: the first batch after construction repairs
            // build-time artifacts; measured rounds then see steady state.
            let _ = run_round(
                maintainer.as_mut(),
                &mut working,
                &mut salt,
                *volumes.first().expect("volumes non-empty"),
                false,
            );
            let mut rounds = Vec::new();
            for &volume in &volumes {
                for pinned in [false, true] {
                    for _ in 0..reps {
                        let r =
                            run_round(maintainer.as_mut(), &mut working, &mut salt, volume, pinned);
                        eprintln!(
                            "bench-pr3:   {side:>2}x{side:<2} |U| = {volume:<4} {:<8} t_u = {:>8.2} ms, cloned {:>5} chunks / {:>10} bytes",
                            if pinned { "pinned" } else { "unpinned" },
                            r.total_ms,
                            r.chunks_cloned,
                            r.bytes_cloned,
                        );
                        rounds.push(r);
                    }
                }
            }
            grid_runs.push(GridRun {
                side,
                vertices: working.num_vertices(),
                index_bytes: maintainer.index_size_bytes(),
                rounds,
            });
        }

        // Headline checks. (1) Within the largest grid, pinned cloned bytes
        // must grow with |U|. (2) At fixed |U|, cloned bytes must grow
        // strictly slower than the index between the smallest and largest
        // grid — the old whole-component `Arc::make_mut` clone grew exactly
        // as fast. The asserted flatness probe is the smallest |U| (larger
        // change sets re-enter chunk-size rounding as they dirty a larger
        // share of the chunks).
        let largest = grid_runs.last().expect("at least one grid");
        let smallest = grid_runs.first().expect("at least one grid");
        let smallest_volume = *volumes.first().expect("volumes non-empty");
        // Mean pinned cloned bytes for one (grid, |U|) configuration.
        let pinned_at = |run: &GridRun, volume: usize| -> f64 {
            let picked: Vec<u64> = run
                .rounds
                .iter()
                .filter(|r| r.pinned && r.update_volume == volume)
                .map(|r| r.bytes_cloned)
                .collect();
            picked.iter().sum::<u64>() as f64 / picked.len().max(1) as f64
        };
        let pinned_by_volume: Vec<(usize, f64)> = volumes
            .iter()
            .map(|&v| (v, pinned_at(largest, v)))
            .collect();
        let grows_with_changes = pinned_by_volume.windows(2).all(|w| w[1].1 >= w[0].1);
        if !grows_with_changes {
            failures.push(format!(
                "{name}: pinned cloned bytes not monotone in |U| on the largest grid: {pinned_by_volume:?}"
            ));
        }
        let index_growth = largest.index_bytes as f64 / smallest.index_bytes.max(1) as f64;
        let mut per_volume_growth = Vec::new();
        for &volume in &volumes {
            let clone_growth = pinned_at(largest, volume) / pinned_at(smallest, volume).max(1.0);
            eprintln!(
                "bench-pr3: {name}: |U| = {volume} pinned: index {index_growth:.2}x larger -> \
                 clones {clone_growth:.2}x larger"
            );
            if !smoke && volume == smallest_volume && clone_growth >= index_growth {
                failures.push(format!(
                    "{name}: at |U| = {volume}, cloned bytes grew {clone_growth:.2}x between \
                     grids while the index grew {index_growth:.2}x — clone cost still scales \
                     with index size"
                ));
            }
            per_volume_growth.push(Json::Obj(vec![
                ("update_volume", Json::Int(volume as u64)),
                ("cloned_bytes_growth", Json::Num(clone_growth)),
                (
                    "flat_vs_index",
                    Json::Str((clone_growth < index_growth).to_string()),
                ),
            ]));
        }
        summary_rows.push(Json::Obj(vec![
            ("algorithm", Json::Str(name.to_string())),
            ("index_bytes_growth", Json::Num(index_growth)),
            (
                "cloned_bytes_growth_by_volume",
                Json::Arr(per_volume_growth),
            ),
            (
                "cloned_bytes_grow_with_change_set",
                Json::Str(grows_with_changes.to_string()),
            ),
        ]));

        algo_rows.push(Json::Obj(vec![
            ("algorithm", Json::Str(name.to_string())),
            (
                "grids",
                Json::Arr(
                    grid_runs
                        .iter()
                        .map(|g| {
                            Json::Obj(vec![
                                ("side", Json::Int(g.side as u64)),
                                ("vertices", Json::Int(g.vertices as u64)),
                                ("index_bytes", Json::Int(g.index_bytes as u64)),
                                (
                                    "rounds",
                                    Json::Arr(g.rounds.iter().map(round_json).collect()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]));
    }

    let doc = Json::Obj(vec![
        ("bench", Json::Str("pr3".to_string())),
        (
            "description",
            Json::Str(
                "Per-stage update latency and chunked-COW clone telemetry (chunks/bytes cloned) \
                 vs change-set size and index size, with (pinned) and without (unpinned) a \
                 harness-held snapshot outstanding across the repair"
                    .to_string(),
            ),
        ),
        (
            "sweep",
            Json::Obj(vec![
                (
                    "grid_sides",
                    Json::Arr(sides.iter().map(|&s| Json::Int(s as u64)).collect()),
                ),
                (
                    "update_volumes",
                    Json::Arr(volumes.iter().map(|&v| Json::Int(v as u64)).collect()),
                ),
                (
                    "workload",
                    Json::Str(
                        "traffic drift: +1 weight increase on |U| distinct edges (decreases, \
                         like the paper's halve/double protocol, open new shorter routes and \
                         saturate the affected label set at laptop-scale grids, which makes \
                         every chunk legitimately dirty and hides the storage-layer effect \
                         being measured)"
                            .to_string(),
                    ),
                ),
                (
                    "pinned",
                    Json::Str("harness holds a final-stage view across apply_batch".to_string()),
                ),
                (
                    "unpinned",
                    Json::Str("only the publisher's transient staged views are alive".to_string()),
                ),
            ]),
        ),
        ("algorithms", Json::Arr(algo_rows)),
        ("summary", Json::Arr(summary_rows)),
    ]);

    std::fs::write(&out_path, doc.to_string_pretty()).expect("write BENCH_pr3.json");
    eprintln!("bench-pr3: wrote {out_path}");
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("bench-pr3: WARNING: {f}");
        }
        if !smoke {
            std::process::exit(1);
        }
    }
}
