//! `bench-pr10` — emits `BENCH_pr10.json`: parallel index construction at
//! million-edge scale.
//!
//! * **build scaling** — a ≥1M-edge strip grid goes through the PR 9
//!   streaming path (written to DIMACS `.gr`, streamed back through
//!   [`load_dimacs_streaming_file`] into the flat CSR, then expanded to the
//!   mutable adjacency graph) and is built into a real DCH index at 1, 2, 4,
//!   and 8 threads; a DH2H index is built at 1 and 4 threads on a
//!   4096×16 slice of the same topology, streamed through the same path
//!   (MinDegree elimination of the full-length strip yields a label tree
//!   deep enough that the DH2H distance table would exceed memory — the
//!   slice keeps the ladder honest without the 100+ GB label fill). Every
//!   thread count must produce **bit-identical** `snapshot_state` bytes and
//!   Dijkstra-exact sampled answers — the worker pool may change how many
//!   construction tasks are in flight, never which tasks exist or how their
//!   outputs combine. Each algorithm's row set reports per-thread-count
//!   wall time next to the warm-restart time of the same index, so
//!   cold-parallel vs warm-restore lands in one table.
//! * **speedup gate** — full mode asserts the 4-thread DCH build is ≥2×
//!   the sequential one, smoke asserts ≥1.3×; on runners with fewer than 4
//!   cores the wall-clock gate is waived with an explicit `WAIVER` line.
//!   The determinism gates are never waived.
//! * **hybrid knee re-sweep** (full mode) — the PR 7 knee search re-run
//!   with the hybrid sleep-then-spin pacer on single-server DCH and
//!   PostMHL: fast indexes are measured near their native knee (mix scale
//!   capped at 32) instead of through 256× mega-batches, and the new knees
//!   land in the JSON next to the build-scaling numbers.
//!
//! `--smoke` streams the bundled `fixtures/smoke.gr` instead of generating
//! the strip grid, builds at 1 and 4 threads, and keeps every determinism
//! gate while applying the softer 1.3× wall-clock bar (or its waiver).
//!
//! Usage: `cargo run --release -p htsp-bench --bin bench-pr10 [--smoke] [--grid WxH] [output.json]`

use htsp_bench::json::Json;
use htsp_graph::dimacs::{load_dimacs_streaming_file, write_gr_file};
use htsp_graph::{available_parallelism, gen, Graph, IndexMaintainer, Query, QuerySet};
use htsp_search::dijkstra_distance;
use htsp_throughput::{
    find_knee, run_open_loop_with_telemetry, AdmissionPolicy, AlgorithmKind, ArrivalProcess,
    BuildParams, CoalescePolicy, DistanceService, LoadProfile, LoadReport, RequestClass,
    RequestMix, RoadNetworkServer, SloTarget,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct BenchConfig {
    smoke: bool,
    /// Strip-grid dimensions for the streamed DCH build graph (full mode
    /// only; smoke streams the bundled fixture instead).
    grid: (usize, usize),
    /// Strip-grid dimensions for the DH2H ladder: a shorter slice of the
    /// same topology, because the label tree of the full-length strip is
    /// deep enough that its distance table would not fit in memory.
    dh2h_grid: (usize, usize),
    /// Thread counts for the DCH scaling ladder.
    dch_threads: Vec<usize>,
    /// Thread counts for the DH2H scaling ladder (shorter: label fill is
    /// the heavy stage and two points bound the curve).
    dh2h_threads: Vec<usize>,
    /// Sampled point-to-point pairs per exactness gate.
    verify_pairs: usize,
    /// Required 4-thread speedup over sequential (waived below 4 cores).
    min_speedup_at_4: f64,
    /// Run the hybrid-pacer knee re-sweep section.
    knees: bool,
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("htsp_pr10_{}_{name}", std::process::id()))
}

/// The bundled smoke fixture, resolved relative to the crate so the binary
/// works from any working directory.
fn fixture_path() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/fixtures/smoke.gr"))
}

/// One thread count on the scaling ladder.
struct ScalePoint {
    threads: usize,
    seconds: f64,
}

/// Builds `kind` at every thread count of `ladder`, asserting bit-identical
/// `snapshot_state` bytes and Dijkstra-exact sampled answers throughout.
/// Returns the timing ladder plus the sequential build (reused for the
/// warm-restart column so the big graph is not built a fifth time).
fn scaling_ladder(
    kind: AlgorithmKind,
    graph: &Graph,
    ladder: &[usize],
    verify_pairs: usize,
) -> (Vec<ScalePoint>, Box<dyn IndexMaintainer>) {
    let queries = QuerySet::random(graph, verify_pairs, 2027);
    let truth: Vec<_> = queries
        .iter()
        .map(|q| dijkstra_distance(graph, q.source, q.target))
        .collect();

    let mut points = Vec::new();
    // The first (sequential) build and its serialized state, the reference
    // every later thread count is compared against.
    type Reference = (Box<dyn IndexMaintainer>, Option<Vec<u8>>);
    let mut reference: Option<Reference> = None;
    for &threads in ladder {
        let params = BuildParams::new(4, threads);
        let t0 = Instant::now();
        let built = kind.build(graph, &params);
        let seconds = t0.elapsed().as_secs_f64();
        eprintln!(
            "bench-pr10: {} built at {threads} thread(s) in {seconds:.2}s",
            kind.name()
        );

        let state = built.snapshot_state();
        let view = built.current_view();
        for (q, &expect) in queries.iter().zip(&truth) {
            assert_eq!(
                view.distance(q.source, q.target),
                expect,
                "{} at {threads} threads disagrees with Dijkstra for {q:?}",
                kind.name()
            );
        }
        match &reference {
            None => {
                assert!(
                    state.is_some(),
                    "{} must carry a native snapshot codec for the byte-equality gate",
                    kind.name()
                );
                reference = Some((built, state));
            }
            Some((_, reference_state)) => {
                assert_eq!(
                    &state,
                    reference_state,
                    "{} snapshot bytes diverge at {threads} threads",
                    kind.name()
                );
            }
        }
        points.push(ScalePoint { threads, seconds });
    }
    let (sequential, _) = reference.expect("ladder is never empty");
    (points, sequential)
}

/// Snapshots the already-built sequential index through a server and times
/// the warm restart, verifying restored answers against the live server.
fn warm_restart(
    kind: AlgorithmKind,
    graph: &Graph,
    built: Box<dyn IndexMaintainer>,
    verify_pairs: usize,
) -> (f64, u64) {
    let server = RoadNetworkServer::builder()
        .algorithm(kind)
        .build_params(BuildParams::new(4, 1))
        .maintainer(built)
        .coalesce(CoalescePolicy::manual())
        .start(graph);
    let queries = QuerySet::random(graph, verify_pairs, 3301);
    let before: Vec<_> = queries
        .iter()
        .map(|q| server.distance(q.source, q.target))
        .collect();
    let path = temp_path(&format!("{}.snap", kind.name()));
    server.save_snapshot(&path).expect("save snapshot");
    let snapshot_bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    server.shutdown();

    let t0 = Instant::now();
    let restored = RoadNetworkServer::builder()
        .start_from_snapshot(&path)
        .expect("warm restart");
    let seconds = t0.elapsed().as_secs_f64();
    for (q, &expect) in queries.iter().zip(&before) {
        assert_eq!(
            restored.distance(q.source, q.target),
            expect,
            "{} drifted across warm restart for {q:?}",
            kind.name()
        );
    }
    restored.shutdown();
    let _ = std::fs::remove_file(&path);
    eprintln!(
        "bench-pr10: {} warm restart in {seconds:.2}s ({snapshot_bytes} snapshot bytes)",
        kind.name()
    );
    (seconds, snapshot_bytes)
}

/// One algorithm's full section: scaling ladder + warm restart + the
/// speedup gate. Returns the JSON row and any wall-clock failure.
fn build_section(
    kind: AlgorithmKind,
    graph: &Graph,
    graph_desc: &str,
    ladder: &[usize],
    cfg: &BenchConfig,
    failures: &mut Vec<String>,
) -> Json {
    let (points, sequential) = scaling_ladder(kind, graph, ladder, cfg.verify_pairs);
    let (warm_seconds, snapshot_bytes) = warm_restart(kind, graph, sequential, cfg.verify_pairs);

    let seq_seconds = points[0].seconds;
    let at4 = points.iter().find(|p| p.threads == 4);
    let mut speedup_at_4 = Json::Str("n/a".to_string());
    let mut waived = false;
    if let Some(p4) = at4 {
        let speedup = seq_seconds / p4.seconds.max(1e-9);
        speedup_at_4 = Json::Num(speedup);
        if available_parallelism() < 4 {
            waived = true;
            println!(
                "bench-pr10: WAIVER: {} 4-thread speedup gate ({:.2}x measured, >= {:.1}x \
                 required) waived on a {}-core runner",
                kind.name(),
                speedup,
                cfg.min_speedup_at_4,
                available_parallelism()
            );
        } else if speedup < cfg.min_speedup_at_4 {
            failures.push(format!(
                "{}: 4-thread build speedup {speedup:.2}x below the {:.1}x bar \
                 ({seq_seconds:.2}s sequential vs {:.2}s at 4 threads)",
                kind.name(),
                cfg.min_speedup_at_4,
                p4.seconds
            ));
        }
    }

    let ladder_json: Vec<Json> = points
        .iter()
        .map(|p| {
            Json::Obj(vec![
                ("threads", Json::Int(p.threads as u64)),
                ("build_seconds", Json::Num(p.seconds)),
                (
                    "speedup_vs_sequential",
                    Json::Num(seq_seconds / p.seconds.max(1e-9)),
                ),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("algorithm", Json::Str(kind.name().to_string())),
        (
            "graph",
            Json::Obj(vec![
                ("kind", Json::Str(graph_desc.to_string())),
                ("vertices", Json::Int(graph.num_vertices() as u64)),
                ("edges", Json::Int(graph.num_edges() as u64)),
            ]),
        ),
        ("ladder", Json::Arr(ladder_json)),
        ("speedup_at_4_threads", speedup_at_4),
        ("speedup_gate_waived", Json::Str(waived.to_string())),
        ("snapshot_bytes_identical", Json::Str("true".to_string())),
        ("warm_restart_seconds", Json::Num(warm_seconds)),
        ("snapshot_bytes", Json::Int(snapshot_bytes)),
        ("verified_pairs", Json::Int(cfg.verify_pairs as u64)),
    ])
}

/// The PR 7 request mix at a given batch scale (see `bench_pr7.rs`).
fn request_mix(scale: usize) -> RequestMix {
    let scale = scale.max(1);
    let side = ((4.0 * (scale as f64).sqrt()).round() as usize).max(4);
    RequestMix::new(vec![
        (RequestClass::PointToPoint { bundle: 8 * scale }, 4.0),
        (RequestClass::OneToMany { fanout: 12 * scale }, 2.0),
        (RequestClass::Matrix { side }, 2.0),
        (
            RequestClass::HotPairs {
                universe: 64,
                zipf_s: 1.1,
            },
            2.0,
        ),
    ])
}

/// Update-stream pacing, probe window, and p95 SLO of the knee re-sweep —
/// the PR 7 full-mode values.
const SWEEP_UPDATE_RATE: f64 = 40.0;
const SWEEP_WINDOW: Duration = Duration::from_millis(500);
const SWEEP_SLO: Duration = Duration::from_millis(150);

/// One open-loop probe against a single server with the hybrid pacer and a
/// paced update stream — the PR 7 measurement, single-deployment flavor.
fn measure(
    server: &RoadNetworkServer,
    pool: &[Query],
    scale: usize,
    rate: f64,
    seed: u64,
) -> LoadReport {
    let service = DistanceService::with_telemetry(
        Arc::clone(server.publisher()),
        2,
        server.cache().cloned(),
        AdmissionPolicy::Shed { max_depth: 16 },
        Arc::clone(server.telemetry()),
    );
    let profile = LoadProfile {
        arrivals: ArrivalProcess::Poisson { rate },
        mix: request_mix(scale),
        clients: 4,
        duration: SWEEP_WINDOW,
        seed,
        slo: SloTarget::p95(SWEEP_SLO),
        pacer: htsp_throughput::Pacer::Hybrid {
            spin_window: Duration::from_micros(200),
        },
    };
    let stop = AtomicBool::new(false);
    let report = std::thread::scope(|scope| {
        let updates = scope.spawn(|| {
            let mut mirror = server.snapshot().graph().clone();
            let mut gen = htsp_graph::UpdateGenerator::new(seed ^ 0xfeed);
            let interval = Duration::from_secs_f64(1.0 / SWEEP_UPDATE_RATE);
            let start = Instant::now();
            let mut i = 0u32;
            while !stop.load(Ordering::Relaxed) {
                let due = start + interval * i;
                std::thread::sleep(due.saturating_duration_since(Instant::now()));
                let batch = gen.generate(&mirror, 1);
                mirror.apply_batch(&batch);
                for &u in batch.as_slice() {
                    server.submit(u);
                }
                i += 1;
            }
        });
        let report =
            run_open_loop_with_telemetry(&service, &profile, pool, Some(server.telemetry()));
        stop.store(true, Ordering::Relaxed);
        updates.join().expect("update stream panicked");
        report
    });
    service.shutdown();
    server.feed().wait_idle();
    report
}

/// Closed-loop calibration, as in `bench_pr7.rs`.
fn calibrate(server: &RoadNetworkServer, pool: &[Query], scale: usize) -> f64 {
    let service = DistanceService::with_telemetry(
        Arc::clone(server.publisher()),
        2,
        server.cache().cloned(),
        AdmissionPolicy::Block,
        Arc::clone(server.telemetry()),
    );
    let mut stream = htsp_throughput::OpenLoopStream::new(
        ArrivalProcess::Constant { rate: 1.0 },
        request_mix(scale),
        pool,
        7,
        0,
    );
    for _ in 0..8 {
        service.answer(stream.next_request().batch);
    }
    let t = Instant::now();
    let mut n = 0u32;
    while t.elapsed() < Duration::from_millis(300) {
        service.answer(stream.next_request().batch);
        n += 1;
    }
    let single_thread_rps = n as f64 / t.elapsed().as_secs_f64();
    service.shutdown();
    single_thread_rps * 2.0
}

/// The hybrid-pacer knee re-sweep: single-server DCH and PostMHL on the
/// PR 7 full-mode grid, mix scale capped at 32 as in the updated
/// `bench-pr7`, knees recorded next to the build-scaling numbers.
fn knee_section(failures: &mut Vec<String>) -> Json {
    let road = gen::grid(32, 32, gen::WeightRange::new(1, 100), 42);
    let pool: Vec<Query> = QuerySet::random(&road, 256, 17).as_slice().to_vec();
    let mut rows = Vec::new();
    for kind in [AlgorithmKind::Dch, AlgorithmKind::PostMhl] {
        eprintln!("bench-pr10: knee re-sweep: building {} ...", kind.name());
        let server = RoadNetworkServer::builder()
            .algorithm(kind)
            .query_workers(0)
            .start(&road);
        let base_capacity = calibrate(&server, &pool, 1);
        // The post-hybrid scale cap: 32, down from the pre-hybrid 256.
        let scale = ((base_capacity / 600.0).ceil() as usize).clamp(1, 32);
        let capacity = if scale == 1 {
            base_capacity
        } else {
            calibrate(&server, &pool, scale)
        };
        let hi = (capacity * 2.0).min(48_000.0);
        let lo = (capacity * 0.05).max(5.0).min(hi * 0.25);
        eprintln!(
            "bench-pr10: knee re-sweep: {}: capacity ~{capacity:.0} req/s at mix scale \
             {scale} (base {base_capacity:.0}), bracket [{lo:.0}, {hi:.0}]",
            kind.name()
        );
        let knee = find_knee(lo, hi, 5, |rate| {
            let report = measure(&server, &pool, scale, rate, 1000 + rate as u64);
            let pass = report.verdict.passed && report.loss_fraction() <= 0.01;
            eprintln!(
                "bench-pr10: knee re-sweep: {}: probe {rate:>6.0} req/s -> p95 {:>7.2} ms, {}",
                kind.name(),
                report.latency.quantile(0.95).as_secs_f64() * 1e3,
                if pass { "pass" } else { "fail" }
            );
            pass
        });
        eprintln!(
            "bench-pr10: knee re-sweep: {}: knee ~{knee:.0} req/s",
            kind.name()
        );
        // The below-knee contract still holds under the hybrid pacer.
        let below = measure(&server, &pool, scale, knee * 0.7, 7001);
        if !below.verdict.passed {
            failures.push(format!(
                "knee re-sweep: {} below-knee run at {:.0} req/s violates the p95 SLO: {:?}",
                kind.name(),
                knee * 0.7,
                below.latency.quantile(0.95)
            ));
        }
        server.shutdown();
        rows.push(Json::Obj(vec![
            ("algorithm", Json::Str(kind.name().to_string())),
            ("deployment", Json::Str("single".to_string())),
            ("pacer", Json::Str("hybrid_200us".to_string())),
            ("mix_scale", Json::Int(scale as u64)),
            ("closed_loop_capacity_rps", Json::Num(capacity)),
            ("knee_rps", Json::Num(knee)),
            (
                "below_knee_p95_ms",
                Json::Num(below.latency.quantile(0.95).as_secs_f64() * 1e3),
            ),
            (
                "below_knee_slo_pass",
                Json::Str(below.verdict.passed.to_string()),
            ),
        ]));
    }
    Json::Arr(rows)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let grid_override = args.iter().position(|a| a == "--grid").map(|i| {
        let spec = args.get(i + 1).expect("--grid needs WxH");
        let (w, h) = spec.split_once('x').expect("--grid WxH");
        (
            w.parse().expect("grid width"),
            h.parse().expect("grid height"),
        )
    });
    // The `--grid` value is positional too; skip it when picking the output
    // path.
    let grid_value_idx = args.iter().position(|a| a == "--grid").map(|i| i + 1);
    let out_path = args
        .iter()
        .enumerate()
        .filter(|&(i, a)| !a.starts_with("--") && Some(i) != grid_value_idx)
        .map(|(_, a)| a.clone())
        .next()
        .unwrap_or_else(|| {
            if smoke {
                "/tmp/BENCH_pr10_smoke.json".to_string()
            } else {
                "BENCH_pr10.json".to_string()
            }
        });
    let cfg = if smoke {
        BenchConfig {
            smoke: true,
            grid: (0, 0), // bundled fixture instead
            dh2h_grid: (0, 0),
            dch_threads: vec![1, 4],
            dh2h_threads: vec![1, 4],
            verify_pairs: 24,
            min_speedup_at_4: 1.3,
            knees: false,
        }
    } else {
        BenchConfig {
            smoke: false,
            // 32768x16 strip: 524,288 vertices, 1,015,792 edges >= 1M.
            grid: grid_override.unwrap_or((32768, 16)),
            dh2h_grid: (4096, 16),
            dch_threads: vec![1, 2, 4, 8],
            dh2h_threads: vec![1, 4],
            verify_pairs: 32,
            min_speedup_at_4: 2.0,
            knees: true,
        }
    };

    // --- The streamed build graphs (PR 9 ingest path) ------------------
    let stream_strip = |w: usize, h: usize, tag: &str| -> (Graph, String, f64) {
        let big = gen::grid(w, h, gen::WeightRange::new(1, 100), 42);
        let path = temp_path(&format!("{tag}.gr"));
        write_gr_file(&big, &path).expect("write strip .gr");
        drop(big);
        let t0 = Instant::now();
        let csr = load_dimacs_streaming_file(&path).expect("stream strip .gr");
        let streamed = t0.elapsed().as_secs_f64();
        let _ = std::fs::remove_file(&path);
        (csr.to_graph(), format!("strip grid {w}x{h}"), streamed)
    };
    let (graph, graph_desc, streamed_seconds, dh2h) = if cfg.smoke {
        let t0 = Instant::now();
        let csr = load_dimacs_streaming_file(fixture_path()).expect("stream fixture");
        let streamed = t0.elapsed().as_secs_f64();
        (
            csr.to_graph(),
            "fixtures/smoke.gr".to_string(),
            streamed,
            None,
        )
    } else {
        let (w, h) = cfg.grid;
        let big = stream_strip(w, h, "strip");
        let (sw, sh) = cfg.dh2h_grid;
        let slice = stream_strip(sw, sh, "slice");
        let (graph, desc, streamed) = big;
        (graph, desc, streamed, Some(slice))
    };
    eprintln!(
        "bench-pr10: {graph_desc}: |V| = {}, |E| = {} streamed in {streamed_seconds:.2}s \
         ({} core(s) available)",
        graph.num_vertices(),
        graph.num_edges(),
        available_parallelism()
    );
    if !cfg.smoke {
        assert!(
            graph.num_edges() >= 1_000_000 || grid_override.is_some(),
            "full-mode build graph must carry >= 1M edges"
        );
    }

    let mut failures: Vec<String> = Vec::new();
    let mut sections = Vec::new();
    sections.push(build_section(
        AlgorithmKind::Dch,
        &graph,
        &graph_desc,
        &cfg.dch_threads,
        &cfg,
        &mut failures,
    ));
    // The DH2H ladder runs on the shorter slice in full mode (see the
    // module docs); smoke reuses the fixture graph.
    let (dh2h_graph, dh2h_desc) = match &dh2h {
        Some((g, desc, _)) => (g, desc.as_str()),
        None => (&graph, graph_desc.as_str()),
    };
    sections.push(build_section(
        AlgorithmKind::Dh2h,
        dh2h_graph,
        dh2h_desc,
        &cfg.dh2h_threads,
        &cfg,
        &mut failures,
    ));

    let knees = if cfg.knees {
        Some(knee_section(&mut failures))
    } else {
        None
    };

    let mut fields = vec![
        ("bench", Json::Str("pr10-parallel-construction".to_string())),
        (
            "mode",
            Json::Str(if cfg.smoke { "smoke" } else { "full" }.to_string()),
        ),
        (
            "graph",
            Json::Obj(vec![
                ("kind", Json::Str(graph_desc)),
                ("vertices", Json::Int(graph.num_vertices() as u64)),
                ("edges", Json::Int(graph.num_edges() as u64)),
                ("stream_seconds", Json::Num(streamed_seconds)),
            ]),
        ),
        ("cores_available", Json::Int(available_parallelism() as u64)),
        ("build_scaling", Json::Arr(sections)),
    ];
    if let Some(knees) = knees {
        fields.push(("hybrid_knee_sweep", knees));
    }
    let doc = Json::Obj(fields);
    std::fs::write(&out_path, doc.to_string_pretty()).expect("write BENCH_pr10.json");
    println!("bench-pr10: wrote {out_path}");
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("bench-pr10: FAILURE: {f}");
        }
        std::process::exit(1);
    }
}
