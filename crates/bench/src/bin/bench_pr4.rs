//! `bench-pr4` — emits `BENCH_pr4.json`: sustained **concurrent ingest +
//! query** throughput of the `RoadNetworkServer` facade, with p50/p99
//! submit-to-visible latency swept over the [`CoalescePolicy`] knobs (the
//! update interval Δt and the max batch size `|U|`).
//!
//! The measured situation is the paper's Figure 1 run as a deployment, not
//! a replay: one ingest thread streams single-edge traffic-drift updates
//! into the server's `UpdateFeed` at a fixed pace, a collector thread
//! drains each `UpdateTicket::wait_visible()` to record the
//! submit-to-visible latency (coalescing delay + first-stage repair), and
//! `clients` closed-loop query threads keep submitting point-to-point
//! batches to the server's `DistanceService`. Nothing is synchronized by
//! the bench itself — batching emerges from the policy, which is the knob
//! under test:
//!
//! * a larger Δt (`max_delay`) amortises repair over more updates —
//!   fewer/larger batches, higher serving headroom — at the price of a
//!   higher visibility lag floor (an update waits up to Δt before its
//!   batch even forms): exactly the Lemma 1 trade-off;
//! * a smaller `max_batch` caps the lag regardless of Δt but pays more
//!   repairs per second.
//!
//! The `summary` section asserts the direction of the first effect: at
//! fixed `max_batch`, median submit-to-visible latency at the largest Δt
//! must exceed the median at the smallest Δt. (Only the endpoints are
//! compared: when Δt drops below the index's repair time `t_u`, the lag
//! floor is `t_u` itself — Lemma 1's installability constraint `t_u < δt`
//! surfacing as a latency floor — so adjacent small-Δt points differ only
//! by noise.)
//!
//! Usage: `cargo run --release -p htsp-bench --bin bench-pr4 [--smoke] [output.json]`
//!
//! `--smoke` shrinks the sweep so CI can prove the ingest pipeline end to
//! end in seconds (and writes to /tmp by default).

use htsp_bench::json::Json;
use htsp_graph::{EdgeId, EdgeUpdate, Query, QuerySet};
use htsp_throughput::{AlgorithmKind, BuildParams, CoalescePolicy, QueryBatch, RoadNetworkServer};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

struct BenchConfig {
    smoke: bool,
    side: usize,
    /// Wall-clock serving time per configuration.
    duration: Duration,
    /// Pause between consecutive update submissions.
    ingest_pace: Duration,
    /// Closed-loop query client threads.
    clients: usize,
    /// Queries per client batch.
    queries_per_batch: usize,
}

struct RunResult {
    delay_ms: u64,
    max_batch: usize,
    updates_submitted: u64,
    batches_applied: u64,
    query_pairs: u64,
    query_pairs_per_s: f64,
    lag_p50_ms: f64,
    lag_p99_ms: f64,
    lag_max_ms: f64,
    wall_s: f64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// One sustained concurrent run against `server` under its configured
/// coalescing policy.
fn run_config(cfg: &BenchConfig, server: &RoadNetworkServer, policy: CoalescePolicy) -> RunResult {
    let pool = server.with_graph(|g| QuerySet::random(g, 512, 4242));
    let stop = AtomicBool::new(false);
    let pairs = AtomicU64::new(0);
    let start = Instant::now();
    let (ticket_tx, ticket_rx) = mpsc::channel();

    let (serving_wall_s, lags_ms): (f64, Vec<f64>) = std::thread::scope(|scope| {
        // Closed-loop query clients against the DistanceService.
        for c in 0..cfg.clients {
            let stop = &stop;
            let pairs = &pairs;
            let pool = &pool;
            scope.spawn(move || {
                let mut i = c * 17;
                while !stop.load(Ordering::Relaxed) {
                    let queries: Vec<Query> = (0..cfg.queries_per_batch)
                        .map(|_| {
                            let q = pool.as_slice()[i % pool.len()];
                            i += 1;
                            q
                        })
                        .collect();
                    let n = queries.len() as u64;
                    let _ = server
                        .submit_queries(QueryBatch::PointToPoint(queries))
                        .wait();
                    pairs.fetch_add(n, Ordering::Relaxed);
                }
            });
        }
        // Ingest: stream single-edge drift updates at the configured pace.
        // The sender moves into the thread so the collector's channel closes
        // (and its drain loop ends) exactly when ingestion stops.
        let ingest_stop = &stop;
        scope.spawn(move || {
            let mut salt = 0x5eed_u64;
            while !ingest_stop.load(Ordering::Relaxed) {
                salt = salt
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let update = server.with_graph(|g| {
                    let e = EdgeId::from_index(((salt >> 33) as usize) % g.num_edges());
                    let w = g.edge_weight(e);
                    EdgeUpdate::new(e, w, w + 1)
                });
                if ticket_tx.send(server.submit(update)).is_err() {
                    return;
                }
                std::thread::sleep(cfg.ingest_pace);
            }
        });
        // Collector: visibility lag of every ticket, in submission order.
        let collector = scope.spawn(move || {
            let mut lags = Vec::new();
            for ticket in ticket_rx.iter() {
                lags.push(ticket.wait_visible().latency.as_secs_f64() * 1e3);
            }
            lags
        });

        std::thread::sleep(cfg.duration);
        stop.store(true, Ordering::Relaxed);
        // Throughput denominator ends here: pairs stop accruing at the stop
        // flag, while the collector still waits out the last partial
        // batch's flush (up to max_delay) — counting that drain tail would
        // bias pairs/s low by an amount that grows with the swept Δt.
        let serving_wall_s = start.elapsed().as_secs_f64();
        (
            serving_wall_s,
            collector.join().expect("collector panicked"),
        )
    });

    let stats = server.feed().stats();
    let mut sorted = lags_ms.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite lag"));
    let query_pairs = pairs.load(Ordering::Relaxed);
    RunResult {
        delay_ms: policy.max_delay.as_millis() as u64,
        max_batch: policy.max_batch,
        updates_submitted: stats.submitted,
        batches_applied: stats.batches_applied,
        query_pairs,
        query_pairs_per_s: query_pairs as f64 / serving_wall_s,
        lag_p50_ms: percentile(&sorted, 0.50),
        lag_p99_ms: percentile(&sorted, 0.99),
        lag_max_ms: sorted.last().copied().unwrap_or(0.0),
        wall_s: serving_wall_s,
    }
}

fn result_json(r: &RunResult) -> Json {
    Json::Obj(vec![
        ("coalesce_delta_t_ms", Json::Int(r.delay_ms)),
        ("coalesce_max_batch", Json::Int(r.max_batch as u64)),
        ("updates_submitted", Json::Int(r.updates_submitted)),
        ("batches_applied", Json::Int(r.batches_applied)),
        (
            "mean_batch_size",
            Json::Num(r.updates_submitted as f64 / r.batches_applied.max(1) as f64),
        ),
        ("query_pairs", Json::Int(r.query_pairs)),
        ("query_pairs_per_s", Json::Num(r.query_pairs_per_s)),
        ("submit_to_visible_p50_ms", Json::Num(r.lag_p50_ms)),
        ("submit_to_visible_p99_ms", Json::Num(r.lag_p99_ms)),
        ("submit_to_visible_max_ms", Json::Num(r.lag_max_ms)),
        ("wall_s", Json::Num(r.wall_s)),
    ])
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| {
            if smoke {
                "/tmp/BENCH_pr4_smoke.json".to_string()
            } else {
                "BENCH_pr4.json".to_string()
            }
        });
    let cfg = if smoke {
        BenchConfig {
            smoke: true,
            side: 12,
            duration: Duration::from_millis(250),
            ingest_pace: Duration::from_millis(1),
            clients: 2,
            queries_per_batch: 16,
        }
    } else {
        BenchConfig {
            smoke: false,
            side: 48,
            duration: Duration::from_millis(2000),
            ingest_pace: Duration::from_millis(5),
            clients: 3,
            queries_per_batch: 32,
        }
    };

    let road = htsp_graph::gen::grid_with_diagonals(
        cfg.side,
        cfg.side,
        htsp_graph::gen::WeightRange::new(1, 100),
        0.1,
        42,
    );
    eprintln!(
        "bench-pr4: {0}x{0} grid, |V| = {1}, |E| = {2}{3}",
        cfg.side,
        road.num_vertices(),
        road.num_edges(),
        if cfg.smoke { " (smoke)" } else { "" }
    );

    // The sweep: Δt at fixed batch cap, then batch cap at fixed Δt.
    let policies: Vec<CoalescePolicy> = if cfg.smoke {
        vec![
            CoalescePolicy::new(32, Duration::from_millis(5)),
            CoalescePolicy::new(32, Duration::from_millis(25)),
        ]
    } else {
        vec![
            CoalescePolicy::new(64, Duration::from_millis(10)),
            CoalescePolicy::new(64, Duration::from_millis(60)),
            CoalescePolicy::new(64, Duration::from_millis(240)),
            CoalescePolicy::new(4, Duration::from_millis(240)),
        ]
    };
    let kinds = if cfg.smoke {
        vec![AlgorithmKind::Dch]
    } else {
        vec![AlgorithmKind::Dch, AlgorithmKind::PostMhl]
    };

    let mut algo_rows = Vec::new();
    let mut summary_rows = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    for kind in kinds {
        eprintln!("bench-pr4: building {kind} index...");
        let mut runs = Vec::new();
        for &policy in &policies {
            // A fresh server per configuration: the coalescing policy is
            // fixed at server start, and ingested +1 drifts accumulate.
            let server = RoadNetworkServer::builder()
                .algorithm(kind)
                .build_params(BuildParams::default())
                .coalesce(policy)
                .query_workers(2)
                .start(&road);
            let r = run_config(&cfg, &server, policy);
            server.shutdown();
            eprintln!(
                "bench-pr4:   {kind} Δt = {:>3} ms, |U| ≤ {:>3}: {:>8.0} pairs/s | {:>4} updates in {:>3} batches | visible p50 {:>7.2} ms p99 {:>7.2} ms",
                r.delay_ms, r.max_batch, r.query_pairs_per_s, r.updates_submitted,
                r.batches_applied, r.lag_p50_ms, r.lag_p99_ms
            );
            runs.push(r);
        }

        // Direction check: at the common batch cap, the p50 lag at the
        // largest Δt must exceed the p50 at the smallest Δt (see module
        // docs for why only the endpoints are compared).
        let fixed_cap = runs
            .iter()
            .filter(|r| r.max_batch == if cfg.smoke { 32 } else { 64 })
            .collect::<Vec<_>>();
        let delta_t_effect = match (fixed_cap.first(), fixed_cap.last()) {
            (Some(lo), Some(hi)) => {
                if hi.lag_p50_ms <= lo.lag_p50_ms {
                    failures.push(format!(
                        "{kind}: p50 visibility lag did not grow from the smallest to the largest Δt ({} ms @ Δt = {} ms vs {} ms @ Δt = {} ms)",
                        lo.lag_p50_ms, lo.delay_ms, hi.lag_p50_ms, hi.delay_ms
                    ));
                }
                hi.lag_p50_ms > lo.lag_p50_ms
            }
            _ => false,
        };
        // Liveness check: every configuration served queries and applied
        // every submitted update.
        for r in &runs {
            if r.query_pairs == 0 {
                failures.push(format!(
                    "{kind}: no queries answered at Δt = {} ms",
                    r.delay_ms
                ));
            }
            if r.batches_applied == 0 {
                failures.push(format!(
                    "{kind}: ingest never flushed at Δt = {} ms",
                    r.delay_ms
                ));
            }
        }
        summary_rows.push(Json::Obj(vec![
            ("algorithm", Json::Str(kind.name().to_string())),
            (
                "p50_lag_grows_with_delta_t",
                Json::Str(delta_t_effect.to_string()),
            ),
        ]));
        algo_rows.push(Json::Obj(vec![
            ("algorithm", Json::Str(kind.name().to_string())),
            ("runs", Json::Arr(runs.iter().map(result_json).collect())),
        ]));
    }

    let doc = Json::Obj(vec![
        ("bench", Json::Str("pr4".to_string())),
        (
            "description",
            Json::Str(
                "Sustained concurrent ingest + query throughput of the RoadNetworkServer \
                 facade: closed-loop DistanceService clients race a paced UpdateFeed ingest \
                 stream; submit-to-visible latency (p50/p99) swept over the CoalescePolicy's \
                 Δt (= Lemma 1's update interval) and max batch size"
                    .to_string(),
            ),
        ),
        (
            "graph",
            Json::Obj(vec![
                (
                    "kind",
                    Json::Str(format!("grid_with_diagonals {0}x{0}", cfg.side)),
                ),
                ("vertices", Json::Int(road.num_vertices() as u64)),
                ("edges", Json::Int(road.num_edges() as u64)),
            ]),
        ),
        (
            "load",
            Json::Obj(vec![
                ("duration_ms", Json::Int(cfg.duration.as_millis() as u64)),
                (
                    "ingest_pace_ms",
                    Json::Int(cfg.ingest_pace.as_millis() as u64),
                ),
                ("query_clients", Json::Int(cfg.clients as u64)),
                ("queries_per_batch", Json::Int(cfg.queries_per_batch as u64)),
                ("query_workers", Json::Int(2)),
                (
                    "workload",
                    Json::Str(
                        "+1 weight drift on one random edge per submission (see bench-pr3 for \
                         why drifts, not halve/double, at laptop scale)"
                            .to_string(),
                    ),
                ),
            ]),
        ),
        ("algorithms", Json::Arr(algo_rows)),
        ("summary", Json::Arr(summary_rows)),
    ]);

    std::fs::write(&out_path, doc.to_string_pretty()).expect("write BENCH_pr4.json");
    eprintln!("bench-pr4: wrote {out_path}");
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("bench-pr4: WARNING: {f}");
        }
        if !cfg.smoke {
            std::process::exit(1);
        }
    }
}
