//! `htsp-experiments` — regenerates the tables and figures of the paper's
//! evaluation section (§VII) at laptop scale.
//!
//! Usage:
//!
//! ```text
//! htsp-experiments <experiment> [--full]
//!
//! experiments:
//!   datasets   Table I   — dataset statistics
//!   exp1       Fig. 10   — effect of partition number k on PMHL
//!   exp2       Fig. 11   — index performance comparison (t_c, |L|, t_q, t_u)
//!   exp3       Fig. 12   — throughput comparison across datasets
//!   exp4       Fig. 13   — evolution of QPS over the update interval
//!   exp5       Fig. 14   — effect of |U|, δt, R*_q
//!   exp6       Fig. 15   — speedup vs thread number
//!   exp7       Fig. 17   — effect of k_e on PostMHL
//!   exp8       Fig. 18   — effect of bandwidth τ on PostMHL
//!   all        run everything (the default)
//! ```
//!
//! `--full` uses the larger dataset presets (slower, closer to the paper's
//! relative gaps).

use htsp_bench::{
    datasets, default_experiment_graphs, format_result_row, host_algorithm,
    run_throughput_comparison, AlgorithmSet,
};
use htsp_core::{Pmhl, PmhlConfig, PostMhl, PostMhlConfig};
use htsp_graph::{Graph, IndexMaintainer, QuerySet, SnapshotPublisher, UpdateGenerator};
use htsp_partition::TdPartitionConfig;
use htsp_throughput::{RoadNetworkServer, SystemConfig, ThroughputHarness};
use std::time::Instant;

/// A deferred algorithm constructor (used to time index construction).
type AlgorithmFactory<'a> = Box<dyn Fn() -> Box<dyn IndexMaintainer> + 'a>;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let which = args.get(1).map(|s| s.as_str()).unwrap_or("all");
    let full = args.iter().any(|a| a == "--full");
    match which {
        "datasets" => exp_datasets(),
        "exp1" => exp1_partition_number(full),
        "exp2" => exp2_index_performance(full),
        "exp3" => exp3_throughput(full),
        "exp4" => exp4_qps_evolution(full),
        "exp5" => exp5_parameter_sweeps(full),
        "exp6" => exp6_thread_scaling(full),
        "exp7" => exp7_postmhl_ke(full),
        "exp8" => exp8_postmhl_bandwidth(full),
        "all" => {
            exp_datasets();
            exp1_partition_number(full);
            exp2_index_performance(full);
            exp3_throughput(full);
            exp4_qps_evolution(full);
            exp5_parameter_sweeps(full);
            exp6_thread_scaling(full);
            exp7_postmhl_ke(full);
            exp8_postmhl_bandwidth(full);
        }
        other => {
            eprintln!("unknown experiment '{other}'");
            std::process::exit(2);
        }
    }
}

fn experiment_graphs(full: bool) -> Vec<(String, Graph)> {
    if full {
        datasets()
    } else {
        default_experiment_graphs()
    }
}

fn laptop_config() -> SystemConfig {
    SystemConfig {
        update_volume: 200,
        update_interval: 120.0,
        max_response_time: 1.0,
        query_sample: 100,
    }
}

/// Table I: dataset statistics.
fn exp_datasets() {
    println!("\n=== Table I: datasets (synthetic stand-ins, see DESIGN.md) ===");
    println!("{:<16} {:>10} {:>10} {:>8}", "name", "|V|", "|E|", "deg");
    for (name, g) in datasets() {
        println!(
            "{:<16} {:>10} {:>10} {:>8.2}",
            name,
            g.num_vertices(),
            g.num_edges(),
            2.0 * g.num_edges() as f64 / g.num_vertices() as f64
        );
    }
}

/// Exp. 1 / Fig. 10: effect of the partition number k on PMHL throughput and
/// on the boundary size |B|.
fn exp1_partition_number(full: bool) {
    println!("\n=== Exp 1 (Fig. 10): effect of partition number k on PMHL ===");
    let (name, g) = &experiment_graphs(full)[0];
    println!("dataset: {name}");
    let harness = ThroughputHarness::new(laptop_config(), 7, 2);
    println!(
        "{:>5} {:>8} {:>14} {:>14}",
        "k", "|B|", "t_u (s)", "λ*_q (q/s)"
    );
    for k in [4usize, 8, 16, 32] {
        let pmhl = Pmhl::build(
            g,
            PmhlConfig {
                num_partitions: k,
                num_threads: 4,
                seed: 1,
            },
        );
        let boundary = pmhl.num_boundary();
        let server = RoadNetworkServer::host(g, Box::new(pmhl));
        let r = harness.run(&server);
        server.shutdown();
        println!(
            "{:>5} {:>8} {:>14.4} {:>14.1}",
            k,
            boundary,
            r.avg_update_time,
            r.throughput()
        );
    }
}

/// Exp. 2 / Fig. 11: index performance comparison (construction time, size,
/// query time, update time).
fn exp2_index_performance(full: bool) {
    println!("\n=== Exp 2 (Fig. 11): index performance comparison ===");
    for (name, g) in experiment_graphs(full) {
        println!("--- dataset {name} ({} vertices) ---", g.num_vertices());
        let queries = QuerySet::random(&g, 200, 11);
        let mut gen_upd = UpdateGenerator::new(5);
        let batch = gen_upd.generate(&g, 200);
        let mut updated = g.clone();
        updated.apply_batch(&batch);
        // Construction time is measured by rebuilding each algorithm.
        let specs: Vec<(&str, AlgorithmFactory)> = vec![
            (
                "DCH",
                Box::new(|| {
                    Box::new(htsp_baselines::DchBaseline::build(&g)) as Box<dyn IndexMaintainer>
                }),
            ),
            (
                "DH2H",
                Box::new(|| {
                    Box::new(htsp_baselines::Dh2hBaseline::build(&g)) as Box<dyn IndexMaintainer>
                }),
            ),
            (
                "N-CH-P",
                Box::new(|| Box::new(htsp_psp::NChP::build(&g, 8, 1)) as Box<dyn IndexMaintainer>),
            ),
            (
                "P-TD-P",
                Box::new(|| Box::new(htsp_psp::PTdP::build(&g, 8, 1)) as Box<dyn IndexMaintainer>),
            ),
            (
                "PMHL",
                Box::new(|| {
                    Box::new(Pmhl::build(
                        &g,
                        PmhlConfig {
                            num_partitions: 8,
                            num_threads: 4,
                            seed: 1,
                        },
                    )) as Box<dyn IndexMaintainer>
                }),
            ),
            (
                "PostMHL",
                Box::new(|| {
                    Box::new(PostMhl::build(&g, PostMhlConfig::default()))
                        as Box<dyn IndexMaintainer>
                }),
            ),
        ];
        println!(
            "{:<10} {:>12} {:>12} {:>14} {:>12}",
            "algorithm", "t_c (s)", "|L| (MB)", "t_q (µs)", "t_u (s)"
        );
        for (name, build) in specs {
            let t0 = Instant::now();
            let mut idx = build();
            let t_c = t0.elapsed().as_secs_f64();
            // Query time through one session on the current snapshot (the
            // serving hot path: scratch checked out once).
            let view = idx.current_view();
            let mut session = view.session();
            let t1 = Instant::now();
            for q in &queries {
                let _ = session.query(q);
            }
            let t_q = t1.elapsed().as_secs_f64() / queries.len() as f64;
            drop(session);
            drop(view);
            let publisher = SnapshotPublisher::new(idx.current_view());
            let timeline = idx.apply_batch(&updated, &batch, &publisher);
            println!(
                "{:<10} {:>12.3} {:>12.2} {:>14.2} {:>12.4}",
                name,
                t_c,
                idx.index_size_bytes() as f64 / (1024.0 * 1024.0),
                t_q * 1e6,
                timeline.total().as_secs_f64()
            );
        }
    }
}

/// Exp. 3 / Fig. 12: throughput comparison across datasets.
fn exp3_throughput(full: bool) {
    println!("\n=== Exp 3 (Fig. 12): throughput comparison ===");
    for (name, g) in experiment_graphs(full) {
        println!("--- dataset {name} ---");
        let results = run_throughput_comparison(&g, AlgorithmSet::Fast, laptop_config(), 8, 4, 2);
        for r in &results {
            println!("{}", format_result_row(&r.algorithm, r));
        }
    }
}

/// Exp. 4 / Fig. 13: QPS evolution during the update interval.
fn exp4_qps_evolution(full: bool) {
    println!("\n=== Exp 4 (Fig. 13): QPS evolution over the update interval ===");
    let (name, g) = &experiment_graphs(full)[0];
    println!("dataset: {name}");
    let harness = ThroughputHarness::new(laptop_config(), 9, 1);
    for &kind in AlgorithmSet::Fast.kinds() {
        let server = host_algorithm(g, kind, 8, 4);
        let r = harness.run(&server);
        server.shutdown();
        let series: Vec<String> = r.batches[0]
            .qps_evolution
            .iter()
            .map(|p| format!("({:.4}s, {:.0} qps)", p.elapsed, p.qps))
            .collect();
        println!("{:<12} {}", r.algorithm, series.join(" -> "));
    }
}

/// Exp. 5 / Fig. 14: effect of update volume |U|, update interval δt, and QoS
/// response time R*_q on throughput.
fn exp5_parameter_sweeps(full: bool) {
    println!("\n=== Exp 5 (Fig. 14): parameter sweeps ===");
    let (name, g) = &experiment_graphs(full)[0];
    println!("dataset: {name}");
    println!("-- varying update volume |U| --");
    for volume in [50usize, 200, 500, 1000] {
        let cfg = SystemConfig {
            update_volume: volume,
            ..laptop_config()
        };
        let results = run_throughput_comparison(g, AlgorithmSet::OursOnly, cfg, 8, 4, 1);
        for r in &results {
            println!("|U|={:>5}  {}", volume, format_result_row(&r.algorithm, r));
        }
    }
    println!("-- varying update interval δt --");
    for dt in SystemConfig::UPDATE_INTERVALS {
        let cfg = SystemConfig {
            update_interval: dt,
            ..laptop_config()
        };
        let results = run_throughput_comparison(g, AlgorithmSet::OursOnly, cfg, 8, 4, 1);
        for r in &results {
            println!("δt={:>5}s  {}", dt, format_result_row(&r.algorithm, r));
        }
    }
    println!("-- varying QoS response time R*_q --");
    for rq in SystemConfig::RESPONSE_TIMES {
        let cfg = SystemConfig {
            max_response_time: rq,
            ..laptop_config()
        };
        let results = run_throughput_comparison(g, AlgorithmSet::OursOnly, cfg, 8, 4, 1);
        for r in &results {
            println!("R*={:>4}s  {}", rq, format_result_row(&r.algorithm, r));
        }
    }
}

/// Exp. 6 / Fig. 15: update-time and throughput speedup versus thread count.
fn exp6_thread_scaling(full: bool) {
    println!("\n=== Exp 6 (Fig. 15): thread scaling ===");
    let (name, g) = &experiment_graphs(full)[0];
    println!("dataset: {name}");
    let harness = ThroughputHarness::new(laptop_config(), 5, 2);
    let max_threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4);
    let mut thread_counts = vec![1usize, 2, 4];
    if max_threads >= 8 {
        thread_counts.push(8);
    }
    println!(
        "{:>8} {:>16} {:>16} {:>14}",
        "threads", "PMHL t_u (s)", "PostMHL t_u (s)", "PostMHL λ*"
    );
    for &p in &thread_counts {
        let pmhl = Pmhl::build(
            g,
            PmhlConfig {
                num_partitions: 8,
                num_threads: p,
                seed: 1,
            },
        );
        let postmhl = PostMhl::build(
            g,
            PostMhlConfig {
                partitioning: TdPartitionConfig {
                    bandwidth: 16,
                    expected_partitions: 32,
                    beta_lower: 0.1,
                    beta_upper: 2.0,
                },
                num_threads: p,
            },
        );
        let pmhl_server = RoadNetworkServer::host(g, Box::new(pmhl));
        let r1 = harness.run(&pmhl_server);
        pmhl_server.shutdown();
        let postmhl_server = RoadNetworkServer::host(g, Box::new(postmhl));
        let r2 = harness.run(&postmhl_server);
        postmhl_server.shutdown();
        println!(
            "{:>8} {:>16.4} {:>16.4} {:>14.1}",
            p,
            r1.avg_update_time,
            r2.avg_update_time,
            r2.throughput()
        );
    }
}

/// Exp. 7 / Fig. 17: effect of the expected partition number k_e on PostMHL.
fn exp7_postmhl_ke(full: bool) {
    println!("\n=== Exp 7 (Fig. 17): effect of k_e on PostMHL ===");
    let (name, g) = &experiment_graphs(full)[0];
    println!("dataset: {name}");
    let harness = ThroughputHarness::new(laptop_config(), 5, 2);
    println!(
        "{:>6} {:>12} {:>14} {:>14}",
        "k_e", "partitions", "t_u (s)", "λ*_q (q/s)"
    );
    for ke in [4usize, 8, 16, 32, 64] {
        let idx = PostMhl::build(
            g,
            PostMhlConfig {
                partitioning: TdPartitionConfig {
                    bandwidth: 16,
                    expected_partitions: ke,
                    beta_lower: 0.1,
                    beta_upper: 2.0,
                },
                num_threads: 4,
            },
        );
        let parts = idx.num_partitions();
        let server = RoadNetworkServer::host(g, Box::new(idx));
        let r = harness.run(&server);
        server.shutdown();
        println!(
            "{:>6} {:>12} {:>14.4} {:>14.1}",
            ke,
            parts,
            r.avg_update_time,
            r.throughput()
        );
    }
}

/// Exp. 8 / Fig. 18: effect of the bandwidth τ on PostMHL.
fn exp8_postmhl_bandwidth(full: bool) {
    println!("\n=== Exp 8 (Fig. 18): effect of bandwidth τ on PostMHL ===");
    let (name, g) = &experiment_graphs(full)[0];
    println!("dataset: {name}");
    let harness = ThroughputHarness::new(laptop_config(), 5, 1);
    let queries = QuerySet::random(g, 100, 3);
    println!(
        "{:>6} {:>12} {:>18} {:>14} {:>14}",
        "τ", "|V(overlay)|", "Q3 t_q (µs)", "t_u (s)", "λ*_q (q/s)"
    );
    for tau in [6usize, 10, 16, 24, 32] {
        let idx = PostMhl::build(
            g,
            PostMhlConfig {
                partitioning: TdPartitionConfig {
                    bandwidth: tau,
                    expected_partitions: 32,
                    beta_lower: 0.1,
                    beta_upper: 2.0,
                },
                num_threads: 4,
            },
        );
        let overlay = idx.num_overlay_vertices();
        // Q-Stage 3 (post-boundary) query time, through a stage-pinned session.
        let view = idx.view_at_stage(2);
        let mut session = view.session();
        let t = Instant::now();
        for q in &queries {
            let _ = session.query(q);
        }
        let q3 = t.elapsed().as_secs_f64() / queries.len() as f64;
        drop(session);
        drop(view);
        let server = RoadNetworkServer::host(g, Box::new(idx));
        let r = harness.run(&server);
        server.shutdown();
        println!(
            "{:>6} {:>12} {:>18.2} {:>14.4} {:>14.1}",
            tau,
            overlay,
            q3 * 1e6,
            r.avg_update_time,
            r.throughput()
        );
    }
}
