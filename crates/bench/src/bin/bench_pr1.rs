//! `bench-pr1` — emits the machine-readable `BENCH_pr1.json` perf snapshot:
//! measured QPS (concurrent `QueryEngine`, 4 workers) next to the modeled
//! Lemma 1 bound for PostMHL, PMHL, DCH, and BiDijkstra on a 64×64 grid.
//!
//! Usage: `cargo run --release -p htsp-bench --bin bench-pr1 [output.json]`
//!
//! Later PRs append their own `BENCH_prN.json`, giving the repository a perf
//! trajectory to compare against.

use htsp_baselines::{BiDijkstraBaseline, DchBaseline};
use htsp_bench::json::Json;
use htsp_core::{Pmhl, PmhlConfig, PostMhl, PostMhlConfig};
use htsp_graph::gen::{grid_with_diagonals, WeightRange};
use htsp_graph::IndexMaintainer;
use htsp_throughput::{QueryEngine, RoadNetworkServer, SystemConfig, ThroughputHarness};
use std::time::Duration;

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pr1.json".to_string());

    // The ISSUE-mandated workload: a 64×64 grid road network.
    let road = grid_with_diagonals(64, 64, WeightRange::new(1, 100), 0.1, 42);
    eprintln!(
        "bench-pr1: 64x64 grid, |V| = {}, |E| = {}",
        road.num_vertices(),
        road.num_edges()
    );

    let system = SystemConfig {
        update_volume: 200,
        update_interval: 120.0,
        max_response_time: 1.0,
        query_sample: 100,
    };
    let harness = ThroughputHarness::new(system, 7, 2);
    let engine = QueryEngine::builder()
        .workers(4)
        .batches(3)
        .update_volume(200)
        .pause_between_batches(Duration::from_millis(100))
        .seed(7)
        .build();

    type Factory<'a> = Box<dyn Fn() -> Box<dyn IndexMaintainer> + 'a>;
    let algorithms: Vec<(&'static str, Factory)> = vec![
        (
            "BiDijkstra",
            Box::new(|| Box::new(BiDijkstraBaseline::new(&road))),
        ),
        ("DCH", Box::new(|| Box::new(DchBaseline::build(&road)))),
        (
            "PMHL",
            Box::new(|| {
                Box::new(Pmhl::build(
                    &road,
                    PmhlConfig {
                        num_partitions: 8,
                        num_threads: 4,
                        seed: 1,
                    },
                ))
            }),
        ),
        (
            "PostMHL",
            Box::new(|| Box::new(PostMhl::build(&road, PostMhlConfig::default()))),
        ),
    ];

    let mut rows = Vec::new();
    for (name, build) in &algorithms {
        // Fresh maintainers per phase: both harness and engine generate their
        // batches from the same seed against the pristine graph, so reusing
        // one instance would make the engine's replays no-op repairs.
        eprintln!("bench-pr1: running {name} (model harness)...");
        let server = RoadNetworkServer::host(&road, build());
        let model = harness.run(&server);
        server.shutdown();
        eprintln!("bench-pr1: running {name} (concurrent engine)...");
        let server = RoadNetworkServer::host(&road, build());
        let measured = engine.run(&server);
        server.shutdown();
        eprintln!(
            "bench-pr1: {name}: modeled λ*_q = {:.1} q/s, measured = {:.1} q/s ({} queries)",
            model.throughput(),
            measured.measured_qps,
            measured.total_queries
        );
        rows.push(Json::Obj(vec![
            ("algorithm", Json::Str(name.to_string())),
            ("lemma1_qps", Json::Num(model.lemma1_throughput)),
            ("staged_qps", Json::Num(model.staged_throughput)),
            ("modeled_qps", Json::Num(model.throughput())),
            ("avg_update_time_s", Json::Num(model.avg_update_time)),
            ("avg_query_time_us", Json::Num(model.avg_query_time * 1e6)),
            ("index_bytes", Json::Int(model.index_size_bytes as u64)),
            ("measured_qps", Json::Num(measured.measured_qps)),
            ("measured_queries", Json::Int(measured.total_queries)),
            ("measured_wall_time_s", Json::Num(measured.wall_time)),
            ("query_workers", Json::Int(measured.num_workers as u64)),
            (
                "per_stage_queries",
                Json::Arr(
                    measured
                        .per_stage_queries
                        .iter()
                        .map(|&c| Json::Int(c))
                        .collect(),
                ),
            ),
            (
                "snapshot_publications",
                Json::Arr(
                    measured
                        .publications
                        .iter()
                        .map(|&(t, s)| {
                            Json::Obj(vec![
                                ("elapsed_s", Json::Num(t)),
                                ("stage", Json::Int(s as u64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]));
    }

    let doc = Json::Obj(vec![
        ("bench", Json::Str("pr1".to_string())),
        (
            "description",
            Json::Str(
                "Measured QPS (concurrent QueryEngine) vs modeled Lemma 1 bound after the \
                 QueryView/IndexMaintainer API split"
                    .to_string(),
            ),
        ),
        (
            "graph",
            Json::Obj(vec![
                ("kind", Json::Str("grid_with_diagonals 64x64".to_string())),
                ("vertices", Json::Int(road.num_vertices() as u64)),
                ("edges", Json::Int(road.num_edges() as u64)),
            ]),
        ),
        (
            "system",
            Json::Obj(vec![
                ("update_volume", Json::Int(system.update_volume as u64)),
                ("update_interval_s", Json::Num(system.update_interval)),
                ("max_response_time_s", Json::Num(system.max_response_time)),
            ]),
        ),
        ("algorithms", Json::Arr(rows)),
    ]);

    std::fs::write(&out_path, doc.to_string_pretty()).expect("write BENCH_pr1.json");
    eprintln!("bench-pr1: wrote {out_path}");
}
