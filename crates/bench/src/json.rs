//! A minimal JSON value writer for the `BENCH_prN.json` perf snapshots
//! (serde is unavailable offline; the vendored crates are stand-ins).

use std::fmt::Write as _;

/// A JSON value.
pub enum Json {
    /// A floating-point number (`null` when not finite).
    Num(f64),
    /// An unsigned integer.
    Int(u64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with ordered fields.
    Obj(Vec<(&'static str, Json)>),
}

impl Json {
    fn render(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        match self {
            Json::Num(x) => {
                if x.is_finite() {
                    write!(out, "{x}").unwrap();
                } else {
                    out.push_str("null");
                }
            }
            Json::Int(x) => write!(out, "{x}").unwrap(),
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32).unwrap(),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    write!(out, "{pad}  ").unwrap();
                    item.render(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                write!(out, "{pad}]").unwrap();
            }
            Json::Obj(fields) => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    write!(out, "{pad}  \"{k}\": ").unwrap();
                    v.render(out, indent + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                write!(out, "{pad}}}").unwrap();
            }
        }
    }

    /// Renders the value as pretty-printed JSON with a trailing newline.
    pub fn to_string_pretty(&self) -> String {
        let mut s = String::new();
        self.render(&mut s, 0);
        s.push('\n');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_values_and_escapes() {
        let doc = Json::Obj(vec![
            ("name", Json::Str("a \"quoted\"\nline".to_string())),
            ("nan", Json::Num(f64::NAN)),
            ("xs", Json::Arr(vec![Json::Int(1), Json::Num(2.5)])),
            ("empty", Json::Arr(Vec::new())),
        ]);
        let s = doc.to_string_pretty();
        assert!(s.contains("\"a \\\"quoted\\\"\\nline\""));
        assert!(s.contains("\"nan\": null"));
        assert!(s.contains("\"empty\": []"));
        assert!(s.ends_with("}\n"));
    }
}
