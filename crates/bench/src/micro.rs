//! A minimal micro-benchmark timing loop used by the `benches/` programs.
//!
//! Criterion is unavailable offline, so the bench targets are plain
//! `harness = false` binaries built on this module: each routine is warmed
//! up, then run repeatedly until a time budget is spent, and the mean / min
//! per-iteration wall time is printed in a fixed-width table.

use std::time::{Duration, Instant};

/// Minimum measurement time per benchmark routine.
const BUDGET: Duration = Duration::from_millis(300);
/// Iterations used to estimate the per-iteration cost before measuring.
const WARMUP_ITERS: u32 = 3;

/// One named group of related measurements (mirrors a criterion group).
pub struct Group(());

/// Starts a measurement group and prints its header.
pub fn group(name: &str) -> Group {
    println!("\n== {name} ==");
    println!(
        "{:<40} {:>14} {:>14} {:>8}",
        "routine", "mean", "min", "iters"
    );
    Group(())
}

fn format_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.3} µs", s * 1e6)
    }
}

impl Group {
    /// Measures `routine` (called back-to-back) and prints one table row.
    pub fn bench<R>(&mut self, label: &str, mut routine: impl FnMut() -> R) -> Duration {
        // Warm-up and cost estimate.
        let t = Instant::now();
        for _ in 0..WARMUP_ITERS {
            std::hint::black_box(routine());
        }
        let est = t.elapsed() / WARMUP_ITERS;
        let iters = if est.is_zero() {
            1000
        } else {
            (BUDGET.as_nanos() / est.as_nanos().max(1)).clamp(1, 1_000_000) as u32
        };

        let mut min = Duration::MAX;
        let total_t = Instant::now();
        for _ in 0..iters {
            let it = Instant::now();
            std::hint::black_box(routine());
            let e = it.elapsed();
            if e < min {
                min = e;
            }
        }
        let mean = total_t.elapsed() / iters;
        println!(
            "{:<40} {:>14} {:>14} {:>8}",
            label,
            format_duration(mean),
            format_duration(min),
            iters
        );
        mean
    }

    /// Measures `routine` with a fresh `setup()` product per iteration;
    /// only the `routine` portion is timed, but the *untimed* setup cost
    /// still bounds the iteration count: the loop stops once the overall
    /// wall clock (setup included) exceeds the budget, so a cheap routine
    /// with an expensive setup (e.g. a full index rebuild per batch-update
    /// iteration) cannot run away.
    pub fn bench_with_setup<S, R>(
        &mut self,
        label: &str,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> R,
    ) -> Duration {
        const MAX_ITERS: u32 = 50;
        let wall = Instant::now();
        let wall_budget = BUDGET * 4;
        let mut iters = 0u32;
        let mut min = Duration::MAX;
        let mut total = Duration::ZERO;
        while iters == 0 || (iters < MAX_ITERS && wall.elapsed() < wall_budget) {
            let input = setup();
            let it = Instant::now();
            std::hint::black_box(routine(input));
            let e = it.elapsed();
            total += e;
            if e < min {
                min = e;
            }
            iters += 1;
        }
        let mean = total / iters;
        println!(
            "{:<40} {:>14} {:>14} {:>8}",
            label,
            format_duration(mean),
            format_duration(min),
            iters
        );
        mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_positive_mean() {
        let mut g = group("smoke");
        let mean = g.bench("noop-ish", || std::hint::black_box(1u64 + 1));
        assert!(mean >= Duration::ZERO);
    }
}
