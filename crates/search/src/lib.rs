//! # htsp-search
//!
//! Index-free shortest-path searches on [`htsp_graph::Graph`]:
//!
//! * [`dijkstra`] — single-source Dijkstra with early termination, multi-target
//!   variants, and bounded (witness) searches used by CH contraction;
//! * [`bidijkstra`] — bidirectional Dijkstra, the paper's index-free baseline
//!   (*BiDijkstra*, §III) and the Q-Stage-1 fallback of PMHL/PostMHL;
//! * [`astar`] — A* with a caller-supplied admissible heuristic (used by the
//!   examples to show the API on landmark-style heuristics).
//!
//! These searches are "naturally dynamic": they always read the current edge
//! weights, so they remain correct immediately after U-Stage 1 applies an
//! update batch to the graph.

#![warn(missing_docs)]

pub mod astar;
pub mod bidijkstra;
pub mod dijkstra;
pub mod heap;

pub use astar::astar_distance;
pub use bidijkstra::{bidijkstra_distance, BiDijkstra, BiDijkstraSession};
pub use dijkstra::{
    dijkstra_all, dijkstra_bounded, dijkstra_distance, dijkstra_multi_source,
    dijkstra_multi_source_ws, dijkstra_to_targets, DijkstraWorkspace,
};
pub use heap::MinHeap;
