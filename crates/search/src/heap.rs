//! A small binary min-heap keyed by distance.
//!
//! `std::collections::BinaryHeap` is a max-heap and requires `Reverse`
//! wrappers; this dedicated min-heap keeps the hot search loops free of
//! wrapper noise and allows lazy deletion (stale entries are skipped when the
//! popped distance no longer matches the current tentative distance).

use htsp_graph::{Dist, VertexId};

/// A binary min-heap of `(Dist, VertexId)` entries ordered by distance.
#[derive(Clone, Debug, Default)]
pub struct MinHeap {
    data: Vec<(Dist, VertexId)>,
}

impl MinHeap {
    /// Creates an empty heap.
    pub fn new() -> Self {
        MinHeap { data: Vec::new() }
    }

    /// Creates an empty heap with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        MinHeap {
            data: Vec::with_capacity(cap),
        }
    }

    /// Number of entries (including stale ones awaiting lazy deletion).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the heap holds no entries.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Removes all entries but keeps the allocation (for workspace reuse).
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Pushes an entry.
    #[inline]
    pub fn push(&mut self, d: Dist, v: VertexId) {
        self.data.push((d, v));
        self.sift_up(self.data.len() - 1);
    }

    /// Returns the minimum entry without removing it.
    #[inline]
    pub fn peek(&self) -> Option<(Dist, VertexId)> {
        self.data.first().copied()
    }

    /// Removes and returns the minimum entry.
    #[inline]
    pub fn pop(&mut self) -> Option<(Dist, VertexId)> {
        if self.data.is_empty() {
            return None;
        }
        let top = self.data[0];
        let last = self.data.pop().unwrap();
        if !self.data.is_empty() {
            self.data[0] = last;
            self.sift_down(0);
        }
        Some(top)
    }

    #[inline]
    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.data[i].0 < self.data[parent].0 {
                self.data.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    #[inline]
    fn sift_down(&mut self, mut i: usize) {
        let n = self.data.len();
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut smallest = i;
            if l < n && self.data[l].0 < self.data[smallest].0 {
                smallest = l;
            }
            if r < n && self.data[r].0 < self.data[smallest].0 {
                smallest = r;
            }
            if smallest == i {
                break;
            }
            self.data.swap(i, smallest);
            i = smallest;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_ascending_order() {
        let mut h = MinHeap::new();
        for (d, v) in [(5u32, 0u32), (1, 1), (9, 2), (3, 3), (3, 4), (0, 5)] {
            h.push(Dist(d), VertexId(v));
        }
        let mut last = Dist(0);
        let mut count = 0;
        while let Some((d, _)) = h.pop() {
            assert!(d >= last);
            last = d;
            count += 1;
        }
        assert_eq!(count, 6);
    }

    #[test]
    fn peek_matches_pop() {
        let mut h = MinHeap::new();
        h.push(Dist(4), VertexId(9));
        h.push(Dist(2), VertexId(3));
        assert_eq!(h.peek(), Some((Dist(2), VertexId(3))));
        assert_eq!(h.pop(), Some((Dist(2), VertexId(3))));
        assert_eq!(h.pop(), Some((Dist(4), VertexId(9))));
        assert_eq!(h.pop(), None);
    }

    #[test]
    fn clear_retains_capacity() {
        let mut h = MinHeap::with_capacity(16);
        for i in 0..10 {
            h.push(Dist(i), VertexId(i));
        }
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.len(), 0);
    }

    #[test]
    fn many_random_pushes_stay_sorted() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        let mut h = MinHeap::new();
        let mut reference = Vec::new();
        for i in 0..1000u32 {
            let d = rng.gen_range(0..10_000u32);
            h.push(Dist(d), VertexId(i));
            reference.push(d);
        }
        reference.sort_unstable();
        let mut popped = Vec::new();
        while let Some((d, _)) = h.pop() {
            popped.push(d.0);
        }
        assert_eq!(popped, reference);
    }
}
