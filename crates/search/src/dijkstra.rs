//! Dijkstra's algorithm and its bounded / multi-target variants.
//!
//! Besides the textbook single-pair search, index construction needs two
//! specialized forms:
//!
//! * [`dijkstra_to_targets`] — one-to-many search that stops once every
//!   requested target is settled (used to precompute all-pair boundary
//!   shortcuts in the *pre-boundary* PSP strategy, §III-C);
//! * [`dijkstra_bounded`] — a search limited by both a distance budget and an
//!   excluded vertex, the classic *witness search* used when contracting a
//!   vertex in CH / MDE (a shortcut `(u, w)` through `v` is only needed if no
//!   witness path avoiding `v` is at most as short).
//!
//! [`DijkstraWorkspace`] keeps the distance, visited-flag, and heap buffers
//! alive across calls so repeated searches (millions during CH construction)
//! do not reallocate; it resets in O(touched) rather than O(n).

use crate::heap::MinHeap;
use htsp_graph::{Adjacency, Dist, VertexId, INF};
use rustc_hash::FxHashSet;

/// Reusable buffers for Dijkstra-style searches over one graph size.
#[derive(Clone, Debug)]
pub struct DijkstraWorkspace {
    dist: Vec<Dist>,
    visited: Vec<bool>,
    touched: Vec<VertexId>,
    heap: MinHeap,
}

impl DijkstraWorkspace {
    /// Creates a workspace for graphs with `n` vertices.
    pub fn new(n: usize) -> Self {
        DijkstraWorkspace {
            dist: vec![INF; n],
            visited: vec![false; n],
            touched: Vec::new(),
            heap: MinHeap::new(),
        }
    }

    /// Grows the workspace if the graph has gained vertices (never shrinks).
    pub fn ensure_capacity(&mut self, n: usize) {
        if self.dist.len() < n {
            self.dist.resize(n, INF);
            self.visited.resize(n, false);
        }
    }

    /// Resets only the entries touched by the previous search.
    fn reset(&mut self) {
        for v in self.touched.drain(..) {
            self.dist[v.index()] = INF;
            self.visited[v.index()] = false;
        }
        self.heap.clear();
    }

    #[inline]
    fn relax(&mut self, v: VertexId, d: Dist) {
        let slot = &mut self.dist[v.index()];
        if d < *slot {
            if slot.is_inf() {
                self.touched.push(v);
            }
            *slot = d;
            self.heap.push(d, v);
        }
    }

    /// Distance of `v` computed by the most recent search (INF if untouched).
    pub fn distance(&self, v: VertexId) -> Dist {
        self.dist[v.index()]
    }
}

/// Computes the shortest distance from `s` to `t`, or `INF` if unreachable.
///
/// Generic over [`Adjacency`], so it runs identically on the adjacency-list
/// [`Graph`](htsp_graph::Graph) and the flat
/// [`CsrGraph`](htsp_graph::CsrGraph) (as do all searches in this module).
pub fn dijkstra_distance<A: Adjacency + ?Sized>(graph: &A, s: VertexId, t: VertexId) -> Dist {
    let mut ws = DijkstraWorkspace::new(graph.num_vertices());
    dijkstra_distance_ws(graph, s, t, &mut ws)
}

/// [`dijkstra_distance`] reusing a caller-provided workspace.
pub fn dijkstra_distance_ws<A: Adjacency + ?Sized>(
    graph: &A,
    s: VertexId,
    t: VertexId,
    ws: &mut DijkstraWorkspace,
) -> Dist {
    ws.ensure_capacity(graph.num_vertices());
    ws.reset();
    ws.relax(s, Dist::ZERO);
    while let Some((d, v)) = ws.heap.pop() {
        if ws.visited[v.index()] {
            continue;
        }
        ws.visited[v.index()] = true;
        if v == t {
            return d;
        }
        graph.for_each_arc(v, |to, w| {
            if !ws.visited[to.index()] {
                ws.relax(to, d.saturating_add_weight(w));
            }
        });
    }
    ws.distance(t)
}

/// Multi-source Dijkstra with *seeded* start distances: vertex `v` ends up
/// at `min_i (seed_dist_i + d(seed_i, v))`.
///
/// This is the overlay-hop primitive of the sharded serving tier: seeding the
/// source partition's boundary vertices with their in-partition distances and
/// running one search over the overlay graph yields, in a single pass, the
/// best `source → boundary → boundary'` distance to *every* overlay vertex —
/// no per-boundary-pair search. Seeds may repeat; `INF` seeds are ignored.
pub fn dijkstra_multi_source<A: Adjacency + ?Sized>(
    graph: &A,
    seeds: &[(VertexId, Dist)],
) -> Vec<Dist> {
    let mut ws = DijkstraWorkspace::new(graph.num_vertices());
    dijkstra_multi_source_ws(graph, seeds, &mut ws);
    ws.dist.clone()
}

/// [`dijkstra_multi_source`] reusing a caller-provided workspace; distances
/// are read back through [`DijkstraWorkspace::distance`].
pub fn dijkstra_multi_source_ws<A: Adjacency + ?Sized>(
    graph: &A,
    seeds: &[(VertexId, Dist)],
    ws: &mut DijkstraWorkspace,
) {
    ws.ensure_capacity(graph.num_vertices());
    ws.reset();
    for &(v, d) in seeds {
        if !d.is_inf() {
            ws.relax(v, d);
        }
    }
    while let Some((d, v)) = ws.heap.pop() {
        if ws.visited[v.index()] {
            continue;
        }
        ws.visited[v.index()] = true;
        graph.for_each_arc(v, |to, w| {
            if !ws.visited[to.index()] {
                ws.relax(to, d.saturating_add_weight(w));
            }
        });
    }
}

/// Computes the full single-source shortest-distance vector from `s`.
pub fn dijkstra_all<A: Adjacency + ?Sized>(graph: &A, s: VertexId) -> Vec<Dist> {
    let n = graph.num_vertices();
    let mut ws = DijkstraWorkspace::new(n);
    ws.reset();
    ws.relax(s, Dist::ZERO);
    while let Some((d, v)) = ws.heap.pop() {
        if ws.visited[v.index()] {
            continue;
        }
        ws.visited[v.index()] = true;
        graph.for_each_arc(v, |to, w| {
            if !ws.visited[to.index()] {
                ws.relax(to, d.saturating_add_weight(w));
            }
        });
    }
    ws.dist.clone()
}

/// One-to-many Dijkstra: returns the distance from `s` to every vertex in
/// `targets` (in the same order), stopping as soon as all targets are settled.
pub fn dijkstra_to_targets<A: Adjacency + ?Sized>(
    graph: &A,
    s: VertexId,
    targets: &[VertexId],
) -> Vec<Dist> {
    let mut ws = DijkstraWorkspace::new(graph.num_vertices());
    dijkstra_to_targets_ws(graph, s, targets, &mut ws)
}

/// [`dijkstra_to_targets`] reusing a caller-provided workspace.
pub fn dijkstra_to_targets_ws<A: Adjacency + ?Sized>(
    graph: &A,
    s: VertexId,
    targets: &[VertexId],
    ws: &mut DijkstraWorkspace,
) -> Vec<Dist> {
    ws.ensure_capacity(graph.num_vertices());
    ws.reset();
    let mut pending: FxHashSet<VertexId> = targets.iter().copied().collect();
    ws.relax(s, Dist::ZERO);
    while let Some((d, v)) = ws.heap.pop() {
        if ws.visited[v.index()] {
            continue;
        }
        ws.visited[v.index()] = true;
        pending.remove(&v);
        if pending.is_empty() {
            break;
        }
        graph.for_each_arc(v, |to, w| {
            if !ws.visited[to.index()] {
                ws.relax(to, d.saturating_add_weight(w));
            }
        });
    }
    targets.iter().map(|&t| ws.distance(t)).collect()
}

/// Bounded witness search: computes the shortest distance from `s` to `t`
/// *ignoring vertex `skip`*, abandoning the search once all frontier
/// distances exceed `limit`. Returns `INF` if no path within the budget
/// avoids `skip`.
///
/// `hop_limit` additionally caps the number of settled vertices, the standard
/// CH trick to keep contraction fast on dense intermediate graphs; pass
/// `usize::MAX` for an exact witness search.
pub fn dijkstra_bounded<A: Adjacency + ?Sized>(
    graph: &A,
    s: VertexId,
    t: VertexId,
    skip: VertexId,
    limit: Dist,
    hop_limit: usize,
) -> Dist {
    let mut ws = DijkstraWorkspace::new(graph.num_vertices());
    dijkstra_bounded_ws(graph, s, t, skip, limit, hop_limit, &mut ws)
}

/// [`dijkstra_bounded`] reusing a caller-provided workspace.
#[allow(clippy::too_many_arguments)]
pub fn dijkstra_bounded_ws<A: Adjacency + ?Sized>(
    graph: &A,
    s: VertexId,
    t: VertexId,
    skip: VertexId,
    limit: Dist,
    hop_limit: usize,
    ws: &mut DijkstraWorkspace,
) -> Dist {
    ws.ensure_capacity(graph.num_vertices());
    ws.reset();
    if s == skip || t == skip {
        return INF;
    }
    ws.relax(s, Dist::ZERO);
    let mut settled = 0usize;
    while let Some((d, v)) = ws.heap.pop() {
        if ws.visited[v.index()] {
            continue;
        }
        if d > limit {
            break;
        }
        ws.visited[v.index()] = true;
        settled += 1;
        if v == t {
            return d;
        }
        if settled >= hop_limit {
            break;
        }
        graph.for_each_arc(v, |to, w| {
            if to == skip || ws.visited[to.index()] {
                return;
            }
            let nd = d.saturating_add_weight(w);
            if nd <= limit {
                ws.relax(to, nd);
            }
        });
    }
    let d = ws.distance(t);
    if d <= limit {
        d
    } else {
        INF
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htsp_graph::gen::{grid, WeightRange};
    use htsp_graph::{CsrGraph, Graph, GraphBuilder};

    fn line_graph(weights: &[u32]) -> Graph {
        let mut b = GraphBuilder::new(weights.len() + 1);
        for (i, &w) in weights.iter().enumerate() {
            b.add_edge(VertexId::from_index(i), VertexId::from_index(i + 1), w);
        }
        b.build()
    }

    #[test]
    fn line_graph_distances() {
        let g = line_graph(&[2, 3, 4]);
        assert_eq!(dijkstra_distance(&g, VertexId(0), VertexId(3)), Dist(9));
        assert_eq!(dijkstra_distance(&g, VertexId(3), VertexId(0)), Dist(9));
        assert_eq!(dijkstra_distance(&g, VertexId(1), VertexId(1)), Dist(0));
    }

    #[test]
    fn unreachable_returns_inf() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(VertexId(0), VertexId(1), 1);
        b.add_edge(VertexId(2), VertexId(3), 1);
        let g = b.build();
        assert_eq!(dijkstra_distance(&g, VertexId(0), VertexId(3)), INF);
    }

    #[test]
    fn all_distances_match_single_pair() {
        let g = grid(7, 7, WeightRange::new(1, 9), 13);
        let dists = dijkstra_all(&g, VertexId(0));
        for (t, &d) in dists.iter().enumerate() {
            assert_eq!(
                d,
                dijkstra_distance(&g, VertexId(0), VertexId::from_index(t))
            );
        }
    }

    #[test]
    fn paper_example_graph_distances() {
        // A 14-vertex fixture modeled after the Figure 2-(a) example network.
        let g = paper_example_graph();
        assert!(g.is_connected());
        g.validate().unwrap();
        // Distances must be symmetric and satisfy the triangle inequality
        // through any intermediate vertex.
        let d_74 = dijkstra_distance(&g, VertexId(6), VertexId(3));
        assert_eq!(d_74, dijkstra_distance(&g, VertexId(3), VertexId(6)));
        let d_7_11 = dijkstra_distance(&g, VertexId(6), VertexId(10));
        let d_11_4 = dijkstra_distance(&g, VertexId(10), VertexId(3));
        assert!(d_74 <= d_7_11.saturating_add(d_11_4));
    }

    /// A 14-vertex fixture modeled after the Figure 2-(a) example network
    /// (vertex `v_i` in the paper is `VertexId(i-1)`); weights are
    /// approximate since the figure is only partially legible.
    pub(crate) fn paper_example_graph() -> Graph {
        let mut b = GraphBuilder::new(14);
        let e = |b: &mut GraphBuilder, u: usize, v: usize, w: u32| {
            b.add_edge(VertexId::from_index(u - 1), VertexId::from_index(v - 1), w);
        };
        e(&mut b, 1, 9, 2);
        e(&mut b, 1, 10, 3);
        e(&mut b, 9, 10, 5);
        e(&mut b, 9, 12, 4);
        e(&mut b, 10, 12, 7);
        e(&mut b, 10, 13, 2);
        e(&mut b, 12, 14, 2);
        e(&mut b, 13, 14, 6);
        e(&mut b, 2, 3, 6);
        e(&mut b, 2, 11, 2);
        e(&mut b, 3, 11, 3);
        e(&mut b, 3, 12, 5);
        e(&mut b, 11, 12, 2);
        e(&mut b, 4, 5, 2);
        e(&mut b, 4, 11, 3);
        e(&mut b, 5, 11, 6);
        e(&mut b, 5, 6, 3);
        e(&mut b, 6, 13, 2);
        e(&mut b, 7, 8, 2);
        e(&mut b, 7, 13, 5);
        e(&mut b, 8, 13, 3);
        e(&mut b, 6, 7, 4);
        b.build()
    }

    #[test]
    fn to_targets_matches_individual_queries() {
        let g = grid(6, 6, WeightRange::new(1, 5), 3);
        let targets = vec![VertexId(5), VertexId(17), VertexId(35), VertexId(0)];
        let got = dijkstra_to_targets(&g, VertexId(10), &targets);
        for (i, &t) in targets.iter().enumerate() {
            assert_eq!(got[i], dijkstra_distance(&g, VertexId(10), t));
        }
    }

    #[test]
    fn bounded_search_respects_skip_vertex() {
        // 0 -1- 1 -1- 2  and a detour 0 -5- 3 -5- 2
        let mut b = GraphBuilder::new(4);
        b.add_edge(VertexId(0), VertexId(1), 1);
        b.add_edge(VertexId(1), VertexId(2), 1);
        b.add_edge(VertexId(0), VertexId(3), 5);
        b.add_edge(VertexId(3), VertexId(2), 5);
        let g = b.build();
        // Avoiding v1 the best path costs 10.
        assert_eq!(
            dijkstra_bounded(
                &g,
                VertexId(0),
                VertexId(2),
                VertexId(1),
                Dist(100),
                usize::MAX
            ),
            Dist(10)
        );
        // With a limit of 9, no witness is found.
        assert_eq!(
            dijkstra_bounded(
                &g,
                VertexId(0),
                VertexId(2),
                VertexId(1),
                Dist(9),
                usize::MAX
            ),
            INF
        );
    }

    #[test]
    fn bounded_search_with_endpoint_as_skip_is_inf() {
        let g = line_graph(&[1, 1]);
        assert_eq!(
            dijkstra_bounded(
                &g,
                VertexId(0),
                VertexId(2),
                VertexId(0),
                Dist(10),
                usize::MAX
            ),
            INF
        );
    }

    #[test]
    fn csr_backed_search_is_exact() {
        let g = grid(9, 8, WeightRange::new(1, 40), 17);
        let csr = CsrGraph::from_graph(&g);
        for (s, t) in [(0usize, 71usize), (3, 50), (71, 0), (20, 20)] {
            let (s, t) = (VertexId::from_index(s), VertexId::from_index(t));
            assert_eq!(dijkstra_distance(&csr, s, t), dijkstra_distance(&g, s, t));
        }
        assert_eq!(
            dijkstra_all(&csr, VertexId(4)),
            dijkstra_all(&g, VertexId(4))
        );
        let targets = [VertexId(1), VertexId(60), VertexId(33)];
        assert_eq!(
            dijkstra_to_targets(&csr, VertexId(9), &targets),
            dijkstra_to_targets(&g, VertexId(9), &targets)
        );
    }

    #[test]
    fn workspace_reuse_gives_same_answers() {
        let g = grid(8, 8, WeightRange::new(1, 7), 21);
        let mut ws = DijkstraWorkspace::new(g.num_vertices());
        for (s, t) in [(0usize, 63usize), (5, 40), (63, 0), (17, 17)] {
            let a = dijkstra_distance_ws(
                &g,
                VertexId::from_index(s),
                VertexId::from_index(t),
                &mut ws,
            );
            let b = dijkstra_distance(&g, VertexId::from_index(s), VertexId::from_index(t));
            assert_eq!(a, b);
        }
    }
}
