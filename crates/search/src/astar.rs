//! A* search with a caller-supplied admissible heuristic.
//!
//! The paper lists A* among the index-free algorithms (§VIII). On pure
//! distance queries without coordinates the zero heuristic degenerates to
//! Dijkstra, but the examples use a landmark (ALT-style) heuristic to show
//! the API, and the throughput harness uses A* as an extra sanity baseline.

use crate::heap::MinHeap;
use htsp_graph::{Dist, Graph, VertexId, INF};

/// Computes the shortest distance from `s` to `t` using A* with heuristic
/// `h(v)` = estimated distance from `v` to `t`.
///
/// The heuristic must be *admissible* (never overestimate) for the result to
/// be exact; it should also be consistent for the search to settle each vertex
/// once. The zero heuristic `|_| Dist::ZERO` is always valid.
pub fn astar_distance<H>(graph: &Graph, s: VertexId, t: VertexId, heuristic: H) -> Dist
where
    H: Fn(VertexId) -> Dist,
{
    if s == t {
        return Dist::ZERO;
    }
    let n = graph.num_vertices();
    let mut dist = vec![INF; n];
    let mut closed = vec![false; n];
    let mut heap = MinHeap::with_capacity(64);
    dist[s.index()] = Dist::ZERO;
    heap.push(heuristic(s), s);
    while let Some((_f, v)) = heap.pop() {
        if closed[v.index()] {
            continue;
        }
        closed[v.index()] = true;
        if v == t {
            return dist[v.index()];
        }
        let dv = dist[v.index()];
        for arc in graph.arcs(v) {
            if closed[arc.to.index()] {
                continue;
            }
            let nd = dv.saturating_add_weight(arc.weight);
            if nd < dist[arc.to.index()] {
                dist[arc.to.index()] = nd;
                heap.push(nd.saturating_add(heuristic(arc.to)), arc.to);
            }
        }
    }
    dist[t.index()]
}

/// A simple ALT-style landmark heuristic: `h(v) = max_L |d(L, t) - d(L, v)|`
/// over a set of landmarks with precomputed single-source distances.
///
/// Built once per graph, reused for many queries. Admissible and consistent by
/// the triangle inequality.
#[derive(Clone, Debug)]
pub struct LandmarkHeuristic {
    /// `dists[i][v]` = distance from landmark `i` to vertex `v`.
    dists: Vec<Vec<Dist>>,
}

impl LandmarkHeuristic {
    /// Precomputes single-source distances from each landmark.
    pub fn new(graph: &Graph, landmarks: &[VertexId]) -> Self {
        let dists = landmarks
            .iter()
            .map(|&l| crate::dijkstra::dijkstra_all(graph, l))
            .collect();
        LandmarkHeuristic { dists }
    }

    /// Lower bound on `d(v, t)`.
    pub fn estimate(&self, v: VertexId, t: VertexId) -> Dist {
        let mut best = 0u32;
        for d in &self.dists {
            let dv = d[v.index()];
            let dt = d[t.index()];
            if dv.is_finite() && dt.is_finite() {
                best = best.max(dv.0.abs_diff(dt.0));
            }
        }
        Dist(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::dijkstra_distance;
    use htsp_graph::gen::{grid, WeightRange};
    use htsp_graph::QuerySet;

    #[test]
    fn zero_heuristic_matches_dijkstra() {
        let g = grid(8, 8, WeightRange::new(1, 9), 4);
        let qs = QuerySet::random(&g, 100, 8);
        for q in &qs {
            assert_eq!(
                astar_distance(&g, q.source, q.target, |_| Dist::ZERO),
                dijkstra_distance(&g, q.source, q.target)
            );
        }
    }

    #[test]
    fn landmark_heuristic_is_admissible_and_exact() {
        let g = grid(10, 10, WeightRange::new(1, 9), 6);
        let landmarks = [VertexId(0), VertexId(99), VertexId(9), VertexId(90)];
        let h = LandmarkHeuristic::new(&g, &landmarks);
        let qs = QuerySet::random(&g, 150, 12);
        for q in &qs {
            let exact = dijkstra_distance(&g, q.source, q.target);
            // Admissibility: the estimate never exceeds the true distance.
            assert!(h.estimate(q.source, q.target) <= exact);
            // A* with this heuristic is exact.
            let got = astar_distance(&g, q.source, q.target, |v| h.estimate(v, q.target));
            assert_eq!(got, exact);
        }
    }

    #[test]
    fn same_vertex_zero() {
        let g = grid(3, 3, WeightRange::default(), 1);
        assert_eq!(
            astar_distance(&g, VertexId(2), VertexId(2), |_| Dist::ZERO),
            Dist(0)
        );
    }
}
