//! Bidirectional Dijkstra — the paper's index-free baseline (*BiDijkstra*).
//!
//! The search grows a forward ball from `s` and a backward ball from `t`
//! (identical on undirected graphs) and stops when the sum of the two frontier
//! minima can no longer improve the best meeting distance found so far. This
//! is Q-Stage 1 of both PMHL and PostMHL: it needs no index at all, so it is
//! available the instant U-Stage 1 has refreshed the edge weights.

use crate::heap::MinHeap;
use htsp_graph::{Dist, Graph, QuerySession, ScratchGuard, VertexId, INF};

/// Reusable bidirectional-Dijkstra searcher (keeps its buffers across calls).
#[derive(Clone, Debug)]
pub struct BiDijkstra {
    dist_f: Vec<Dist>,
    dist_b: Vec<Dist>,
    visited_f: Vec<bool>,
    visited_b: Vec<bool>,
    touched: Vec<VertexId>,
    heap_f: MinHeap,
    heap_b: MinHeap,
}

impl BiDijkstra {
    /// Creates a searcher for graphs with `n` vertices.
    pub fn new(n: usize) -> Self {
        BiDijkstra {
            dist_f: vec![INF; n],
            dist_b: vec![INF; n],
            visited_f: vec![false; n],
            visited_b: vec![false; n],
            touched: Vec::new(),
            heap_f: MinHeap::new(),
            heap_b: MinHeap::new(),
        }
    }

    fn reset(&mut self, n: usize) {
        if self.dist_f.len() < n {
            self.dist_f.resize(n, INF);
            self.dist_b.resize(n, INF);
            self.visited_f.resize(n, false);
            self.visited_b.resize(n, false);
        }
        for v in self.touched.drain(..) {
            self.dist_f[v.index()] = INF;
            self.dist_b[v.index()] = INF;
            self.visited_f[v.index()] = false;
            self.visited_b[v.index()] = false;
        }
        self.heap_f.clear();
        self.heap_b.clear();
    }

    /// Computes the shortest distance between `s` and `t` on the current
    /// weights of `graph`, or `INF` if they are disconnected.
    pub fn distance(&mut self, graph: &Graph, s: VertexId, t: VertexId) -> Dist {
        if s == t {
            return Dist::ZERO;
        }
        let n = graph.num_vertices();
        self.reset(n);

        self.dist_f[s.index()] = Dist::ZERO;
        self.dist_b[t.index()] = Dist::ZERO;
        self.touched.push(s);
        self.touched.push(t);
        self.heap_f.push(Dist::ZERO, s);
        self.heap_b.push(Dist::ZERO, t);

        let mut best = INF;
        loop {
            let top_f = self.heap_f.peek().map(|(d, _)| d).unwrap_or(INF);
            let top_b = self.heap_b.peek().map(|(d, _)| d).unwrap_or(INF);
            if top_f.is_inf() && top_b.is_inf() {
                break;
            }
            // Standard stopping criterion: no meeting path can beat `best`.
            if top_f.saturating_add(top_b) >= best {
                break;
            }
            // Expand the smaller frontier.
            let forward = top_f <= top_b;
            let (heap, dist_this, visited_this, dist_other) = if forward {
                (
                    &mut self.heap_f,
                    &mut self.dist_f,
                    &mut self.visited_f,
                    &self.dist_b,
                )
            } else {
                (
                    &mut self.heap_b,
                    &mut self.dist_b,
                    &mut self.visited_b,
                    &self.dist_f,
                )
            };
            let (d, v) = match heap.pop() {
                Some(x) => x,
                None => break,
            };
            if visited_this[v.index()] {
                continue;
            }
            visited_this[v.index()] = true;
            // Meeting check.
            let other = dist_other[v.index()];
            if other.is_finite() {
                let cand = d.saturating_add(other);
                if cand < best {
                    best = cand;
                }
            }
            for arc in graph.arcs(v) {
                let nd = d.saturating_add_weight(arc.weight);
                let slot = &mut dist_this[arc.to.index()];
                if nd < *slot {
                    if slot.is_inf() && dist_other[arc.to.index()].is_inf() {
                        self.touched.push(arc.to);
                    } else if slot.is_inf() {
                        // Already touched by the other direction; still record
                        // once so reset clears this side too.
                        self.touched.push(arc.to);
                    }
                    *slot = nd;
                    heap.push(nd, arc.to);
                }
            }
        }
        best
    }
}

impl BiDijkstra {
    /// One-to-many: distances from `s` to every vertex of `targets` (same
    /// order), computed with a *single* truncated forward Dijkstra that
    /// stops as soon as the last pending target settles — one search for
    /// the whole target set instead of one bidirectional search per pair.
    ///
    /// Reuses the searcher's forward buffers, so a session-held searcher
    /// serves interleaved `distance` and `one_to_many` calls without
    /// reallocation.
    pub fn one_to_many(&mut self, graph: &Graph, s: VertexId, targets: &[VertexId]) -> Vec<Dist> {
        if targets.is_empty() {
            // Without this guard the search below would settle the whole
            // graph before noticing it has nothing to answer.
            return Vec::new();
        }
        let n = graph.num_vertices();
        self.reset(n);
        // Count distinct unsettled targets via the backward-visited flags,
        // which this forward-only search repurposes as target markers (they
        // are cleared by `touched` exactly like the search state).
        let mut pending = 0usize;
        for &t in targets {
            if !self.visited_b[t.index()] {
                self.visited_b[t.index()] = true;
                self.touched.push(t);
                pending += 1;
            }
        }
        self.dist_f[s.index()] = Dist::ZERO;
        if !self.visited_b[s.index()] {
            // Not already recorded as a target: record `s` for reset().
            self.touched.push(s);
        }
        self.heap_f.push(Dist::ZERO, s);
        while let Some((d, v)) = self.heap_f.pop() {
            if self.visited_f[v.index()] {
                continue;
            }
            self.visited_f[v.index()] = true;
            if self.visited_b[v.index()] {
                pending -= 1;
                if pending == 0 {
                    break;
                }
            }
            for arc in graph.arcs(v) {
                if self.visited_f[arc.to.index()] {
                    continue;
                }
                let nd = d.saturating_add_weight(arc.weight);
                let slot = &mut self.dist_f[arc.to.index()];
                if nd < *slot {
                    if slot.is_inf() && !self.visited_b[arc.to.index()] {
                        self.touched.push(arc.to);
                    }
                    *slot = nd;
                    self.heap_f.push(nd, arc.to);
                }
            }
        }
        targets.iter().map(|&t| self.dist_f[t.index()]).collect()
    }
}

/// A [`QuerySession`] over a frozen graph, answering with bidirectional
/// Dijkstra (point-to-point) and truncated forward Dijkstra (one-to-many).
///
/// This is the session type behind every BiDijkstra-stage view in the
/// repository (the index-free baseline and the Q-Stage-1 fallbacks of MHL,
/// PMHL, and PostMHL): it owns one pooled searcher for its whole lifetime.
pub struct BiDijkstraSession<'a> {
    graph: &'a Graph,
    scratch: ScratchGuard<'a, BiDijkstra>,
}

impl<'a> BiDijkstraSession<'a> {
    /// Opens a session over `graph` holding `scratch` until dropped.
    pub fn new(graph: &'a Graph, scratch: ScratchGuard<'a, BiDijkstra>) -> Self {
        BiDijkstraSession { graph, scratch }
    }
}

impl QuerySession for BiDijkstraSession<'_> {
    fn distance(&mut self, s: VertexId, t: VertexId) -> Dist {
        self.scratch.distance(self.graph, s, t)
    }

    fn one_to_many(&mut self, source: VertexId, targets: &[VertexId]) -> Vec<Dist> {
        self.scratch.one_to_many(self.graph, source, targets)
    }
}

/// Convenience wrapper allocating a fresh searcher for one query.
pub fn bidijkstra_distance(graph: &Graph, s: VertexId, t: VertexId) -> Dist {
    BiDijkstra::new(graph.num_vertices()).distance(graph, s, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::dijkstra_distance;
    use htsp_graph::gen::{grid, random_geometric, WeightRange};
    use htsp_graph::{GraphBuilder, QuerySet};

    #[test]
    fn same_vertex_is_zero() {
        let g = grid(3, 3, WeightRange::default(), 1);
        assert_eq!(bidijkstra_distance(&g, VertexId(4), VertexId(4)), Dist(0));
    }

    #[test]
    fn disconnected_is_inf() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(VertexId(0), VertexId(1), 1);
        b.add_edge(VertexId(2), VertexId(3), 1);
        let g = b.build();
        assert_eq!(bidijkstra_distance(&g, VertexId(0), VertexId(2)), INF);
    }

    #[test]
    fn matches_dijkstra_on_grid() {
        let g = grid(9, 9, WeightRange::new(1, 20), 5);
        let qs = QuerySet::random(&g, 200, 17);
        let mut bd = BiDijkstra::new(g.num_vertices());
        for q in &qs {
            assert_eq!(
                bd.distance(&g, q.source, q.target),
                dijkstra_distance(&g, q.source, q.target),
                "mismatch for {:?}",
                q
            );
        }
    }

    #[test]
    fn matches_dijkstra_on_geometric_graph() {
        let g = random_geometric(250, 3, WeightRange::new(1, 100), 9);
        let qs = QuerySet::random(&g, 100, 23);
        let mut bd = BiDijkstra::new(g.num_vertices());
        for q in &qs {
            assert_eq!(
                bd.distance(&g, q.source, q.target),
                dijkstra_distance(&g, q.source, q.target)
            );
        }
    }

    #[test]
    fn one_to_many_matches_individual_searches() {
        let g = random_geometric(200, 3, WeightRange::new(1, 50), 11);
        let mut bd = BiDijkstra::new(g.num_vertices());
        let targets: Vec<VertexId> = (0..40).map(|i| VertexId(i * 5)).collect();
        for s in [VertexId(0), VertexId(7), VertexId(199)] {
            let batch = bd.one_to_many(&g, s, &targets);
            for (i, &t) in targets.iter().enumerate() {
                assert_eq!(
                    batch[i],
                    dijkstra_distance(&g, s, t),
                    "one_to_many({s}, {t}) diverged"
                );
            }
            // Interleave a point-to-point query: buffers must reset cleanly.
            assert_eq!(
                bd.distance(&g, s, VertexId(100)),
                dijkstra_distance(&g, s, VertexId(100))
            );
        }
    }

    #[test]
    fn one_to_many_handles_duplicates_source_and_unreachable() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(VertexId(0), VertexId(1), 2);
        b.add_edge(VertexId(1), VertexId(2), 3);
        b.add_edge(VertexId(3), VertexId(4), 1); // disconnected component
        let g = b.build();
        let mut bd = BiDijkstra::new(5);
        let targets = [
            VertexId(2),
            VertexId(2), // duplicate
            VertexId(0), // the source itself
            VertexId(4), // unreachable
        ];
        let got = bd.one_to_many(&g, VertexId(0), &targets);
        assert_eq!(got, vec![Dist(5), Dist(5), Dist(0), INF]);
        assert!(bd.one_to_many(&g, VertexId(0), &[]).is_empty());
        // And again, to prove the target markers were fully cleared.
        let got = bd.one_to_many(&g, VertexId(1), &[VertexId(0), VertexId(3)]);
        assert_eq!(got, vec![Dist(2), INF]);
    }

    #[test]
    fn session_owns_scratch_and_matches_dijkstra() {
        use htsp_graph::{QuerySession, ScratchPool};
        let g = grid(7, 7, WeightRange::new(1, 9), 8);
        let n = g.num_vertices();
        let pool = ScratchPool::new(move || BiDijkstra::new(n));
        {
            let mut session = BiDijkstraSession::new(&g, pool.checkout());
            assert_eq!(pool.idle(), 0, "session holds the scratch");
            assert_eq!(
                session.distance(VertexId(0), VertexId(48)),
                dijkstra_distance(&g, VertexId(0), VertexId(48))
            );
            let targets = [VertexId(3), VertexId(30), VertexId(48)];
            let batch = session.one_to_many(VertexId(5), &targets);
            for (i, &t) in targets.iter().enumerate() {
                assert_eq!(batch[i], dijkstra_distance(&g, VertexId(5), t));
            }
            let m = session.matrix(&[VertexId(0), VertexId(10)], &targets);
            assert_eq!(m[1][2], dijkstra_distance(&g, VertexId(10), VertexId(48)));
        }
        assert_eq!(pool.idle(), 1, "scratch returned on session drop");
    }

    #[test]
    fn correct_after_weight_updates() {
        let mut g = grid(6, 6, WeightRange::new(5, 15), 2);
        let mut bd = BiDijkstra::new(g.num_vertices());
        let before = bd.distance(&g, VertexId(0), VertexId(35));
        // Double every edge weight: distances must exactly double.
        let updates: Vec<_> = g.edges().map(|(e, _, _, w)| (e, w * 2)).collect();
        for (e, w) in updates {
            g.set_edge_weight(e, w);
        }
        let after = bd.distance(&g, VertexId(0), VertexId(35));
        assert_eq!(after.0, before.0 * 2);
    }
}
