//! Bidirectional Dijkstra — the paper's index-free baseline (*BiDijkstra*).
//!
//! The search grows a forward ball from `s` and a backward ball from `t`
//! (identical on undirected graphs) and stops when the sum of the two frontier
//! minima can no longer improve the best meeting distance found so far. This
//! is Q-Stage 1 of both PMHL and PostMHL: it needs no index at all, so it is
//! available the instant U-Stage 1 has refreshed the edge weights.

use crate::heap::MinHeap;
use htsp_graph::{Dist, Graph, VertexId, INF};

/// Reusable bidirectional-Dijkstra searcher (keeps its buffers across calls).
#[derive(Clone, Debug)]
pub struct BiDijkstra {
    dist_f: Vec<Dist>,
    dist_b: Vec<Dist>,
    visited_f: Vec<bool>,
    visited_b: Vec<bool>,
    touched: Vec<VertexId>,
    heap_f: MinHeap,
    heap_b: MinHeap,
}

impl BiDijkstra {
    /// Creates a searcher for graphs with `n` vertices.
    pub fn new(n: usize) -> Self {
        BiDijkstra {
            dist_f: vec![INF; n],
            dist_b: vec![INF; n],
            visited_f: vec![false; n],
            visited_b: vec![false; n],
            touched: Vec::new(),
            heap_f: MinHeap::new(),
            heap_b: MinHeap::new(),
        }
    }

    fn reset(&mut self, n: usize) {
        if self.dist_f.len() < n {
            self.dist_f.resize(n, INF);
            self.dist_b.resize(n, INF);
            self.visited_f.resize(n, false);
            self.visited_b.resize(n, false);
        }
        for v in self.touched.drain(..) {
            self.dist_f[v.index()] = INF;
            self.dist_b[v.index()] = INF;
            self.visited_f[v.index()] = false;
            self.visited_b[v.index()] = false;
        }
        self.heap_f.clear();
        self.heap_b.clear();
    }

    /// Computes the shortest distance between `s` and `t` on the current
    /// weights of `graph`, or `INF` if they are disconnected.
    pub fn distance(&mut self, graph: &Graph, s: VertexId, t: VertexId) -> Dist {
        if s == t {
            return Dist::ZERO;
        }
        let n = graph.num_vertices();
        self.reset(n);

        self.dist_f[s.index()] = Dist::ZERO;
        self.dist_b[t.index()] = Dist::ZERO;
        self.touched.push(s);
        self.touched.push(t);
        self.heap_f.push(Dist::ZERO, s);
        self.heap_b.push(Dist::ZERO, t);

        let mut best = INF;
        loop {
            let top_f = self.heap_f.peek().map(|(d, _)| d).unwrap_or(INF);
            let top_b = self.heap_b.peek().map(|(d, _)| d).unwrap_or(INF);
            if top_f.is_inf() && top_b.is_inf() {
                break;
            }
            // Standard stopping criterion: no meeting path can beat `best`.
            if top_f.saturating_add(top_b) >= best {
                break;
            }
            // Expand the smaller frontier.
            let forward = top_f <= top_b;
            let (heap, dist_this, visited_this, dist_other) = if forward {
                (
                    &mut self.heap_f,
                    &mut self.dist_f,
                    &mut self.visited_f,
                    &self.dist_b,
                )
            } else {
                (
                    &mut self.heap_b,
                    &mut self.dist_b,
                    &mut self.visited_b,
                    &self.dist_f,
                )
            };
            let (d, v) = match heap.pop() {
                Some(x) => x,
                None => break,
            };
            if visited_this[v.index()] {
                continue;
            }
            visited_this[v.index()] = true;
            // Meeting check.
            let other = dist_other[v.index()];
            if other.is_finite() {
                let cand = d.saturating_add(other);
                if cand < best {
                    best = cand;
                }
            }
            for arc in graph.arcs(v) {
                let nd = d.saturating_add_weight(arc.weight);
                let slot = &mut dist_this[arc.to.index()];
                if nd < *slot {
                    if slot.is_inf() && dist_other[arc.to.index()].is_inf() {
                        self.touched.push(arc.to);
                    } else if slot.is_inf() {
                        // Already touched by the other direction; still record
                        // once so reset clears this side too.
                        self.touched.push(arc.to);
                    }
                    *slot = nd;
                    heap.push(nd, arc.to);
                }
            }
        }
        best
    }
}

/// Convenience wrapper allocating a fresh searcher for one query.
pub fn bidijkstra_distance(graph: &Graph, s: VertexId, t: VertexId) -> Dist {
    BiDijkstra::new(graph.num_vertices()).distance(graph, s, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::dijkstra_distance;
    use htsp_graph::gen::{grid, random_geometric, WeightRange};
    use htsp_graph::{GraphBuilder, QuerySet};

    #[test]
    fn same_vertex_is_zero() {
        let g = grid(3, 3, WeightRange::default(), 1);
        assert_eq!(bidijkstra_distance(&g, VertexId(4), VertexId(4)), Dist(0));
    }

    #[test]
    fn disconnected_is_inf() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(VertexId(0), VertexId(1), 1);
        b.add_edge(VertexId(2), VertexId(3), 1);
        let g = b.build();
        assert_eq!(bidijkstra_distance(&g, VertexId(0), VertexId(2)), INF);
    }

    #[test]
    fn matches_dijkstra_on_grid() {
        let g = grid(9, 9, WeightRange::new(1, 20), 5);
        let qs = QuerySet::random(&g, 200, 17);
        let mut bd = BiDijkstra::new(g.num_vertices());
        for q in &qs {
            assert_eq!(
                bd.distance(&g, q.source, q.target),
                dijkstra_distance(&g, q.source, q.target),
                "mismatch for {:?}",
                q
            );
        }
    }

    #[test]
    fn matches_dijkstra_on_geometric_graph() {
        let g = random_geometric(250, 3, WeightRange::new(1, 100), 9);
        let qs = QuerySet::random(&g, 100, 23);
        let mut bd = BiDijkstra::new(g.num_vertices());
        for q in &qs {
            assert_eq!(
                bd.distance(&g, q.source, q.target),
                dijkstra_distance(&g, q.source, q.target)
            );
        }
    }

    #[test]
    fn correct_after_weight_updates() {
        let mut g = grid(6, 6, WeightRange::new(5, 15), 2);
        let mut bd = BiDijkstra::new(g.num_vertices());
        let before = bd.distance(&g, VertexId(0), VertexId(35));
        // Double every edge weight: distances must exactly double.
        let updates: Vec<_> = g.edges().map(|(e, _, _, w)| (e, w * 2)).collect();
        for (e, w) in updates {
            g.set_edge_weight(e, w);
        }
        let after = bd.distance(&g, VertexId(0), VertexId(35));
        assert_eq!(after.0, before.0 * 2);
    }
}
