//! No-boundary query processing (§III-C).
//!
//! Under the no-boundary strategy the partition indexes `{L_i}` only know
//! *within-partition* distances, so every query that may leave a partition
//! must concatenate partition labels with overlay labels through the boundary
//! vertices. This is exactly the distance concatenation whose cost the
//! cross-boundary strategy of §IV-A later removes.

use crate::overlay::OverlayGraph;
use crate::partition_index::PartitionIndex;
use crate::partitioned::Partitioned;
use htsp_graph::{Dist, VertexId, INF};
use htsp_td::H2HIndex;

/// Distance from `v` to each boundary vertex of its own partition, using the
/// no-boundary partition index (within-partition distances). If `v` is itself
/// a boundary vertex the list is just `[(v, 0)]`.
///
/// Generic over the index container so both plain slices and the
/// chunk-granular [`CowVec`](htsp_graph::cow::CowVec) the maintainers keep
/// their partition indexes in can be queried.
fn boundary_distances<I>(
    partitioned: &Partitioned,
    indexes: &I,
    v: VertexId,
) -> Vec<(VertexId, Dist)>
where
    I: std::ops::Index<usize, Output = PartitionIndex> + ?Sized,
{
    if partitioned.partition.is_boundary(v) {
        return vec![(v, Dist::ZERO)];
    }
    let pi = partitioned.partition.partition_of(v);
    let sub = &partitioned.subgraphs[pi];
    let lv = sub.to_local(v).expect("vertex must map into its partition");
    indexes[pi]
        .boundary_local
        .iter()
        .map(|&lb| (sub.to_global(lb), indexes[pi].distance_local(lv, lb)))
        .collect()
}

/// Answers a query with the no-boundary strategy: `{L_i}` + `L̃` with distance
/// concatenation (same-partition Case and the four cross-partition cases of
/// §III-C).
pub fn no_boundary_distance<I>(
    partitioned: &Partitioned,
    indexes: &I,
    overlay: &OverlayGraph,
    overlay_index: &H2HIndex,
    s: VertexId,
    t: VertexId,
) -> Dist
where
    I: std::ops::Index<usize, Output = PartitionIndex> + ?Sized,
{
    if s == t {
        return Dist::ZERO;
    }
    let overlay_dist = |a: VertexId, b: VertexId| -> Dist {
        match (overlay.to_local(a), overlay.to_local(b)) {
            (Some(la), Some(lb)) => overlay_index.distance(la, lb),
            _ => INF,
        }
    };
    let same = partitioned.partition.same_partition(s, t);
    let mut best = INF;
    if same {
        let pi = partitioned.partition.partition_of(s);
        let sub = &partitioned.subgraphs[pi];
        let (ls, lt) = (sub.to_local(s).unwrap(), sub.to_local(t).unwrap());
        best = indexes[pi].distance_local(ls, lt);
    }
    // Concatenated route through the overlay (needed for cross-partition
    // queries, and possibly shorter than the in-partition route for
    // same-partition queries under the no-boundary strategy).
    let from_s = boundary_distances(partitioned, indexes, s);
    let from_t = boundary_distances(partitioned, indexes, t);
    for &(bp, dp) in &from_s {
        if dp.is_inf() {
            continue;
        }
        for &(bq, dq) in &from_t {
            if dq.is_inf() {
                continue;
            }
            let mid = if bp == bq {
                Dist::ZERO
            } else {
                overlay_dist(bp, bq)
            };
            let cand = dp.saturating_add(mid).saturating_add(dq);
            if cand < best {
                best = cand;
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition_index::PartitionIndex;
    use htsp_graph::gen::{grid, WeightRange};
    use htsp_graph::QuerySet;
    use htsp_partition::partition_region_growing;
    use htsp_search::dijkstra_distance;
    use htsp_td::TreeDecomposition;

    #[test]
    fn no_boundary_query_matches_dijkstra() {
        let g = grid(9, 9, WeightRange::new(1, 20), 13);
        let pr = partition_region_growing(&g, 4, 2);
        let p = Partitioned::build(g, pr);
        let indexes: Vec<PartitionIndex> = p.subgraphs.iter().map(PartitionIndex::build).collect();
        let chs: Vec<&htsp_ch::ContractionHierarchy> =
            indexes.iter().map(|i| i.hierarchy()).collect();
        let overlay = OverlayGraph::build(&p, &chs);
        let overlay_index = H2HIndex::from_decomposition(TreeDecomposition::build(&overlay.graph));
        let qs = QuerySet::random(&p.graph, 150, 21);
        for q in &qs {
            let expect = dijkstra_distance(&p.graph, q.source, q.target);
            let got =
                no_boundary_distance(&p, &indexes, &overlay, &overlay_index, q.source, q.target);
            assert_eq!(got, expect, "no-boundary mismatch for {:?}", q);
        }
    }

    #[test]
    fn same_partition_queries_are_covered() {
        let g = grid(8, 8, WeightRange::new(1, 15), 5);
        let pr = partition_region_growing(&g, 4, 7);
        let p = Partitioned::build(g, pr);
        let indexes: Vec<PartitionIndex> = p.subgraphs.iter().map(PartitionIndex::build).collect();
        let chs: Vec<&htsp_ch::ContractionHierarchy> =
            indexes.iter().map(|i| i.hierarchy()).collect();
        let overlay = OverlayGraph::build(&p, &chs);
        let overlay_index = H2HIndex::from_decomposition(TreeDecomposition::build(&overlay.graph));
        // Pick pairs inside partition 0 explicitly.
        let members = p.partition.vertices(0);
        for i in (0..members.len().saturating_sub(1)).step_by(3) {
            let (s, t) = (members[i], members[i + 1]);
            let expect = dijkstra_distance(&p.graph, s, t);
            let got = no_boundary_distance(&p, &indexes, &overlay, &overlay_index, s, t);
            assert_eq!(got, expect, "same-partition mismatch {s}->{t}");
        }
    }
}
