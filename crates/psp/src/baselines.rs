//! The PSP baselines of the paper's evaluation (§VII-A):
//!
//! * [`NChP`] — *N-CH-P* [35]: the update-oriented no-boundary PSP index with
//!   DCH as the underlying index. Maintenance only repairs shortcut arrays;
//!   queries run the Partitioned-CH upward search.
//! * [`PTdP`] — *P-TD-P* [35]: the query-oriented post-boundary PSP index with
//!   DH2H as the underlying index. Same-partition queries use the corrected
//!   partition labels `L'_i`; cross-partition queries concatenate
//!   `L'_i`, `L̃`, and `L'_j` through the boundary vertices.

use crate::overlay::OverlayGraph;
use crate::partition_index::build_partition_ch;
use crate::partitioned::Partitioned;
use crate::pch::PchSearcher;
use crate::post_boundary::PostBoundaryIndexes;
use htsp_ch::{ContractionHierarchy, OrderingStrategy, ShortcutMode};
use htsp_graph::{
    Dist, DynamicSpIndex, Graph, UpdateBatch, UpdateTimeline, VertexId, INF,
};
use htsp_partition::{partition_region_growing, PartitionResult};
use htsp_td::{H2HIndex, TreeDecomposition};
use std::time::Instant;

/// Builds the standard partitioned substrate shared by both baselines.
fn build_substrate(graph: &Graph, k: usize, seed: u64) -> (Partitioned, Vec<ContractionHierarchy>, OverlayGraph) {
    let pr: PartitionResult = partition_region_growing(graph, k, seed);
    let partitioned = Partitioned::build(graph.clone(), pr);
    let chs: Vec<ContractionHierarchy> = partitioned
        .subgraphs
        .iter()
        .map(build_partition_ch)
        .collect();
    let refs: Vec<&ContractionHierarchy> = chs.iter().collect();
    let overlay = OverlayGraph::build(&partitioned, &refs);
    (partitioned, chs, overlay)
}

/// N-CH-P: no-boundary PSP index over DCH.
pub struct NChP {
    partitioned: Partitioned,
    partition_chs: Vec<ContractionHierarchy>,
    overlay: OverlayGraph,
    overlay_ch: ContractionHierarchy,
    searcher: PchSearcher,
}

impl NChP {
    /// Builds N-CH-P over `graph` with `k` partitions.
    pub fn build(graph: &Graph, k: usize, seed: u64) -> Self {
        let (partitioned, partition_chs, overlay) = build_substrate(graph, k, seed);
        let overlay_ch = ContractionHierarchy::build(
            &overlay.graph,
            OrderingStrategy::MinDegree,
            ShortcutMode::AllPairs,
        );
        let searcher = PchSearcher::new(graph.num_vertices());
        NChP {
            partitioned,
            partition_chs,
            overlay,
            overlay_ch,
            searcher,
        }
    }

    /// The partitioned view (for tests and experiments).
    pub fn partitioned(&self) -> &Partitioned {
        &self.partitioned
    }
}

impl DynamicSpIndex for NChP {
    fn name(&self) -> &'static str {
        "N-CH-P"
    }

    fn apply_batch(&mut self, _graph: &Graph, batch: &UpdateBatch) -> UpdateTimeline {
        let mut timeline = UpdateTimeline::default();
        let t0 = Instant::now();
        let routed = self.partitioned.apply_batch(batch);
        timeline.push("U1: on-spot edge update", t0.elapsed());

        let t1 = Instant::now();
        let mut per_part = Vec::new();
        for (i, ch) in self.partition_chs.iter_mut().enumerate() {
            if routed.intra[i].is_empty() {
                continue;
            }
            let changes = ch.apply_batch(
                &self.partitioned.subgraphs[i].graph,
                routed.intra[i].as_slice(),
            );
            per_part.push((i, changes));
        }
        let overlay_batch = self
            .overlay
            .apply_changes(&self.partitioned, &routed.inter, &per_part);
        self.overlay_ch
            .apply_batch(&self.overlay.graph, overlay_batch.as_slice());
        timeline.push("U2: no-boundary shortcut update", t1.elapsed());
        timeline
    }

    fn distance(&mut self, _graph: &Graph, s: VertexId, t: VertexId) -> Dist {
        let refs: Vec<&ContractionHierarchy> = self.partition_chs.iter().collect();
        self.searcher
            .distance(&self.partitioned, &refs, &self.overlay, &self.overlay_ch, s, t)
    }

    fn index_size_bytes(&self) -> usize {
        self.partition_chs
            .iter()
            .map(|c| c.index_size_bytes())
            .sum::<usize>()
            + self.overlay_ch.index_size_bytes()
    }
}

/// P-TD-P: post-boundary PSP index over DH2H.
pub struct PTdP {
    partitioned: Partitioned,
    partition_chs: Vec<ContractionHierarchy>,
    overlay: OverlayGraph,
    overlay_index: H2HIndex,
    post: PostBoundaryIndexes,
}

impl PTdP {
    /// Builds P-TD-P over `graph` with `k` partitions.
    pub fn build(graph: &Graph, k: usize, seed: u64) -> Self {
        let (partitioned, partition_chs, overlay) = build_substrate(graph, k, seed);
        let overlay_index = H2HIndex::from_decomposition(TreeDecomposition::build(&overlay.graph));
        let post = PostBoundaryIndexes::build(&partitioned, &overlay, &overlay_index);
        PTdP {
            partitioned,
            partition_chs,
            overlay,
            overlay_index,
            post,
        }
    }

    /// The partitioned view (for tests and experiments).
    pub fn partitioned(&self) -> &Partitioned {
        &self.partitioned
    }

    /// Distance from a vertex to a boundary vertex of its own partition using
    /// `L'_i` (both global ids).
    fn to_boundary(&self, v: VertexId) -> Vec<(VertexId, Dist)> {
        if self.partitioned.partition.is_boundary(v) {
            return vec![(v, Dist::ZERO)];
        }
        let pi = self.partitioned.partition.partition_of(v);
        let sub = &self.partitioned.subgraphs[pi];
        let lv = sub.to_local(v).expect("vertex must be in its partition");
        sub.boundary_local
            .iter()
            .map(|&lb| (sub.to_global(lb), self.post.distance_to_boundary(pi, lv, lb)))
            .collect()
    }
}

impl DynamicSpIndex for PTdP {
    fn name(&self) -> &'static str {
        "P-TD-P"
    }

    fn apply_batch(&mut self, _graph: &Graph, batch: &UpdateBatch) -> UpdateTimeline {
        let mut timeline = UpdateTimeline::default();
        let t0 = Instant::now();
        let routed = self.partitioned.apply_batch(batch);
        timeline.push("U1: on-spot edge update", t0.elapsed());

        // No-boundary shortcut + overlay label update (steps 1-3 of the
        // post-boundary update procedure, Fig. 16).
        let t1 = Instant::now();
        let mut per_part = Vec::new();
        for (i, ch) in self.partition_chs.iter_mut().enumerate() {
            if routed.intra[i].is_empty() {
                continue;
            }
            let changes = ch.apply_batch(
                &self.partitioned.subgraphs[i].graph,
                routed.intra[i].as_slice(),
            );
            per_part.push((i, changes));
        }
        let overlay_batch = self
            .overlay
            .apply_changes(&self.partitioned, &routed.inter, &per_part);
        self.overlay_index
            .apply_batch(&self.overlay.graph, overlay_batch.as_slice());
        timeline.push("U2-3: overlay update", t1.elapsed());

        // Post-boundary index update (steps 4-5).
        let t2 = Instant::now();
        self.post.update(
            &self.partitioned,
            &self.overlay,
            &self.overlay_index,
            &routed.intra,
        );
        timeline.push("U4: post-boundary index update", t2.elapsed());
        timeline
    }

    fn distance(&mut self, _graph: &Graph, s: VertexId, t: VertexId) -> Dist {
        if s == t {
            return Dist::ZERO;
        }
        if self.partitioned.partition.same_partition(s, t) {
            let pi = self.partitioned.partition.partition_of(s);
            return self.post.same_partition_distance(&self.partitioned, pi, s, t);
        }
        // Cross-partition: concatenate L'_i, L̃, L'_j.
        let from_s = self.to_boundary(s);
        let from_t = self.to_boundary(t);
        let mut best = INF;
        for &(bp, dp) in &from_s {
            if dp.is_inf() {
                continue;
            }
            let lbp = match self.overlay.to_local(bp) {
                Some(l) => l,
                None => continue,
            };
            for &(bq, dq) in &from_t {
                if dq.is_inf() {
                    continue;
                }
                let mid = if bp == bq {
                    Dist::ZERO
                } else {
                    match self.overlay.to_local(bq) {
                        Some(lbq) => self.overlay_index.distance(lbp, lbq),
                        None => INF,
                    }
                };
                let cand = dp.saturating_add(mid).saturating_add(dq);
                if cand < best {
                    best = cand;
                }
            }
        }
        best
    }

    fn index_size_bytes(&self) -> usize {
        self.partition_chs
            .iter()
            .map(|c| c.index_size_bytes())
            .sum::<usize>()
            + self.overlay_index.index_size_bytes()
            + self.post.index_size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htsp_graph::gen::{grid, WeightRange};
    use htsp_graph::{QuerySet, UpdateGenerator};
    use htsp_search::dijkstra_distance;

    fn check<I: DynamicSpIndex>(idx: &mut I, g: &Graph, count: usize, seed: u64) {
        let qs = QuerySet::random(g, count, seed);
        for q in &qs {
            assert_eq!(
                idx.distance(g, q.source, q.target),
                dijkstra_distance(g, q.source, q.target),
                "{} mismatch for {:?}",
                idx.name(),
                q
            );
        }
    }

    #[test]
    fn nchp_exact_before_and_after_updates() {
        let mut g = grid(9, 9, WeightRange::new(1, 20), 31);
        let mut idx = NChP::build(&g, 4, 1);
        check(&mut idx, &g, 120, 3);
        let mut gen = UpdateGenerator::new(5);
        for round in 0..2 {
            let batch = gen.generate(&g, 20);
            g.apply_batch(&batch);
            let timeline = idx.apply_batch(&g, &batch);
            assert!(timeline.stages.len() >= 2);
            check(&mut idx, &g, 80, 10 + round);
        }
    }

    #[test]
    fn ptdp_exact_before_and_after_updates() {
        let mut g = grid(9, 9, WeightRange::new(1, 20), 37);
        let mut idx = PTdP::build(&g, 4, 2);
        check(&mut idx, &g, 120, 4);
        let mut gen = UpdateGenerator::new(6);
        for round in 0..2 {
            let batch = gen.generate(&g, 20);
            g.apply_batch(&batch);
            let timeline = idx.apply_batch(&g, &batch);
            assert!(timeline.total().as_nanos() > 0);
            check(&mut idx, &g, 80, 20 + round);
        }
    }

    #[test]
    fn index_sizes_reported() {
        let g = grid(8, 8, WeightRange::new(1, 9), 3);
        let nchp = NChP::build(&g, 4, 1);
        let ptdp = PTdP::build(&g, 4, 1);
        assert!(nchp.index_size_bytes() > 0);
        // P-TD-P additionally stores labels, so it is the larger index.
        assert!(ptdp.index_size_bytes() > nchp.index_size_bytes());
    }
}
