//! The PSP baselines of the paper's evaluation (§VII-A):
//!
//! * [`NChP`] — *N-CH-P* \[35\]: the update-oriented no-boundary PSP index with
//!   DCH as the underlying index. Maintenance only repairs shortcut arrays;
//!   queries run the Partitioned-CH upward search.
//! * [`PTdP`] — *P-TD-P* \[35\]: the query-oriented post-boundary PSP index with
//!   DH2H as the underlying index. Same-partition queries use the corrected
//!   partition labels `L'_i`; cross-partition queries concatenate
//!   `L'_i`, `L̃`, and `L'_j` through the boundary vertices.
//!
//! Both are single-stage: one snapshot is published per batch, when the
//! repair completes.

use crate::overlay::OverlayGraph;
use crate::partition_index::build_partition_ch;
use crate::partitioned::Partitioned;
use crate::pch::PchSearcher;
use crate::post_boundary::PostBoundaryIndexes;
use htsp_ch::{ContractionHierarchy, OrderingStrategy, ShortcutMode};
use htsp_graph::{
    Dist, Graph, IndexMaintainer, QuerySession, QueryView, ScratchGuard, ScratchPool,
    SnapshotPublisher, UpdateBatch, UpdateTimeline, VertexId, WorkerPool, INF,
};
use htsp_partition::{partition_region_growing, PartitionResult};
use htsp_td::{H2HIndex, TreeDecomposition};
use std::sync::Arc;
use std::time::Instant;

/// Builds the standard partitioned substrate shared by both baselines; the
/// per-partition hierarchies build concurrently on `pool`.
fn build_substrate(
    graph: &Graph,
    k: usize,
    seed: u64,
    pool: &WorkerPool,
) -> (Partitioned, Vec<ContractionHierarchy>, OverlayGraph) {
    let pr: PartitionResult = partition_region_growing(graph, k, seed);
    let partitioned = Partitioned::build(graph.clone(), pr);
    let chs: Vec<ContractionHierarchy> =
        pool.run("psp_partition_ch", partitioned.subgraphs.len(), |i| {
            build_partition_ch(&partitioned.subgraphs[i])
        });
    let refs: Vec<&ContractionHierarchy> = chs.iter().collect();
    let overlay = OverlayGraph::build(&partitioned, &refs);
    (partitioned, chs, overlay)
}

/// Immutable N-CH-P snapshot.
pub struct NChPView {
    partitioned: Arc<Partitioned>,
    partition_chs: Arc<Vec<ContractionHierarchy>>,
    overlay: Arc<OverlayGraph>,
    overlay_ch: Arc<ContractionHierarchy>,
    searcher: Arc<ScratchPool<PchSearcher>>,
}

impl QueryView for NChPView {
    fn algorithm(&self) -> &'static str {
        "N-CH-P"
    }

    fn stage(&self) -> usize {
        0
    }

    fn distance(&self, s: VertexId, t: VertexId) -> Dist {
        self.searcher.with(|p| {
            p.distance(
                &self.partitioned,
                &*self.partition_chs,
                &self.overlay,
                &self.overlay_ch,
                s,
                t,
            )
        })
    }

    fn session(&self) -> Box<dyn QuerySession + '_> {
        Box::new(NChPSession {
            view: self,
            scratch: self.searcher.checkout(),
        })
    }

    fn graph(&self) -> &Graph {
        &self.partitioned.graph
    }

    fn index_size_bytes(&self) -> usize {
        self.partition_chs
            .iter()
            .map(|c| c.index_size_bytes())
            .sum::<usize>()
            + self.overlay_ch.index_size_bytes()
    }
}

/// Per-thread N-CH-P session: owns one pooled [`PchSearcher`].
struct NChPSession<'a> {
    view: &'a NChPView,
    scratch: ScratchGuard<'a, PchSearcher>,
}

impl QuerySession for NChPSession<'_> {
    fn distance(&mut self, s: VertexId, t: VertexId) -> Dist {
        self.scratch.distance(
            &self.view.partitioned,
            &*self.view.partition_chs,
            &self.view.overlay,
            &self.view.overlay_ch,
            s,
            t,
        )
    }
}

/// N-CH-P: no-boundary PSP index over DCH (write half).
pub struct NChP {
    partitioned: Arc<Partitioned>,
    partition_chs: Arc<Vec<ContractionHierarchy>>,
    overlay: Arc<OverlayGraph>,
    overlay_ch: Arc<ContractionHierarchy>,
    searcher: Arc<ScratchPool<PchSearcher>>,
}

impl NChP {
    /// Builds N-CH-P over `graph` with `k` partitions.
    pub fn build(graph: &Graph, k: usize, seed: u64) -> Self {
        Self::build_pooled(graph, k, seed, &WorkerPool::sequential())
    }

    /// Builds N-CH-P with per-partition hierarchies constructed concurrently
    /// on `pool`. Identical result at any thread count.
    pub fn build_pooled(graph: &Graph, k: usize, seed: u64, pool: &WorkerPool) -> Self {
        let (partitioned, partition_chs, overlay) = build_substrate(graph, k, seed, pool);
        let overlay_ch = ContractionHierarchy::build_pooled(
            &overlay.graph,
            OrderingStrategy::MinDegree,
            ShortcutMode::AllPairs,
            pool,
        );
        let n = graph.num_vertices();
        NChP {
            partitioned: Arc::new(partitioned),
            partition_chs: Arc::new(partition_chs),
            overlay: Arc::new(overlay),
            overlay_ch: Arc::new(overlay_ch),
            searcher: Arc::new(ScratchPool::new(move || PchSearcher::new(n))),
        }
    }

    /// The partitioned view (for tests and experiments).
    pub fn partitioned(&self) -> &Partitioned {
        &self.partitioned
    }
}

impl IndexMaintainer for NChP {
    fn name(&self) -> &'static str {
        "N-CH-P"
    }

    fn apply_batch(
        &mut self,
        _graph: &Graph,
        batch: &UpdateBatch,
        publisher: &SnapshotPublisher,
    ) -> UpdateTimeline {
        let mut timeline = UpdateTimeline::default();
        let t0 = Instant::now();
        let routed = Arc::make_mut(&mut self.partitioned).apply_batch(batch);
        timeline.push("U1: on-spot edge update", t0.elapsed());

        let t1 = Instant::now();
        let mut per_part = Vec::new();
        {
            let chs = Arc::make_mut(&mut self.partition_chs);
            for (i, ch) in chs.iter_mut().enumerate() {
                if routed.intra[i].is_empty() {
                    continue;
                }
                let changes = ch.apply_batch(
                    &self.partitioned.subgraphs[i].graph,
                    routed.intra[i].as_slice(),
                );
                per_part.push((i, changes));
            }
        }
        let overlay_batch = Arc::make_mut(&mut self.overlay).apply_changes(
            &self.partitioned,
            &routed.inter,
            &per_part,
        );
        Arc::make_mut(&mut self.overlay_ch)
            .apply_batch(&self.overlay.graph, overlay_batch.as_slice());
        publisher.publish(self.current_view());
        timeline.push("U2: no-boundary shortcut update", t1.elapsed());
        timeline
    }

    fn current_view(&self) -> Arc<dyn QueryView> {
        Arc::new(NChPView {
            partitioned: Arc::clone(&self.partitioned),
            partition_chs: Arc::clone(&self.partition_chs),
            overlay: Arc::clone(&self.overlay),
            overlay_ch: Arc::clone(&self.overlay_ch),
            searcher: Arc::clone(&self.searcher),
        })
    }

    fn index_size_bytes(&self) -> usize {
        self.partition_chs
            .iter()
            .map(|c| c.index_size_bytes())
            .sum::<usize>()
            + self.overlay_ch.index_size_bytes()
    }
}

/// Immutable P-TD-P snapshot.
pub struct PTdPView {
    partitioned: Arc<Partitioned>,
    partition_chs: Arc<Vec<ContractionHierarchy>>,
    overlay: Arc<OverlayGraph>,
    overlay_index: Arc<H2HIndex>,
    post: Arc<PostBoundaryIndexes>,
}

impl PTdPView {
    /// Distance from a vertex to a boundary vertex of its own partition using
    /// `L'_i` (both global ids).
    fn to_boundary(&self, v: VertexId) -> Vec<(VertexId, Dist)> {
        if self.partitioned.partition.is_boundary(v) {
            return vec![(v, Dist::ZERO)];
        }
        let pi = self.partitioned.partition.partition_of(v);
        let sub = &self.partitioned.subgraphs[pi];
        let lv = sub.to_local(v).expect("vertex must be in its partition");
        sub.boundary_local
            .iter()
            .map(|&lb| {
                (
                    sub.to_global(lb),
                    self.post.distance_to_boundary(pi, lv, lb),
                )
            })
            .collect()
    }

    /// Cross-partition distance to `t` given the precomputed boundary labels
    /// `from_s` of the source — the `L'_i` ∘ `L̃` ∘ `L'_j` concatenation.
    /// Sessions compute `from_s` once per source and reuse it across a whole
    /// target set.
    fn cross_distance(&self, from_s: &[(VertexId, Dist)], t: VertexId) -> Dist {
        let from_t = self.to_boundary(t);
        let mut best = INF;
        for &(bp, dp) in from_s {
            if dp.is_inf() {
                continue;
            }
            let lbp = match self.overlay.to_local(bp) {
                Some(l) => l,
                None => continue,
            };
            for &(bq, dq) in &from_t {
                if dq.is_inf() {
                    continue;
                }
                let mid = if bp == bq {
                    Dist::ZERO
                } else {
                    match self.overlay.to_local(bq) {
                        Some(lbq) => self.overlay_index.distance(lbp, lbq),
                        None => INF,
                    }
                };
                let cand = dp.saturating_add(mid).saturating_add(dq);
                if cand < best {
                    best = cand;
                }
            }
        }
        best
    }
}

/// Per-thread P-TD-P session: label lookups need no scratch, but the session
/// caches the source-side boundary labels (`L'_i(s)`) so a one-to-many or
/// matrix row computes them once instead of once per target.
struct PTdPSession<'a> {
    view: &'a PTdPView,
    /// `(source, its boundary labels)` of the most recent cross-partition
    /// source, reused while the source stays the same.
    source: Option<(VertexId, Vec<(VertexId, Dist)>)>,
}

impl PTdPSession<'_> {
    fn boundary_of(&mut self, s: VertexId) -> &[(VertexId, Dist)] {
        if self.source.as_ref().map(|(v, _)| *v) != Some(s) {
            self.source = Some((s, self.view.to_boundary(s)));
        }
        &self.source.as_ref().expect("just set").1
    }
}

impl QuerySession for PTdPSession<'_> {
    fn distance(&mut self, s: VertexId, t: VertexId) -> Dist {
        if s == t {
            return Dist::ZERO;
        }
        if self.view.partitioned.partition.same_partition(s, t) {
            let pi = self.view.partitioned.partition.partition_of(s);
            return self
                .view
                .post
                .same_partition_distance(&self.view.partitioned, pi, s, t);
        }
        let view = self.view;
        view.cross_distance(self.boundary_of(s), t)
    }
}

impl QueryView for PTdPView {
    fn algorithm(&self) -> &'static str {
        "P-TD-P"
    }

    fn stage(&self) -> usize {
        0
    }

    fn distance(&self, s: VertexId, t: VertexId) -> Dist {
        if s == t {
            return Dist::ZERO;
        }
        if self.partitioned.partition.same_partition(s, t) {
            let pi = self.partitioned.partition.partition_of(s);
            return self
                .post
                .same_partition_distance(&self.partitioned, pi, s, t);
        }
        // Cross-partition: concatenate L'_i, L̃, L'_j.
        self.cross_distance(&self.to_boundary(s), t)
    }

    fn session(&self) -> Box<dyn QuerySession + '_> {
        Box::new(PTdPSession {
            view: self,
            source: None,
        })
    }

    fn graph(&self) -> &Graph {
        &self.partitioned.graph
    }

    fn index_size_bytes(&self) -> usize {
        self.partition_chs
            .iter()
            .map(|c| c.index_size_bytes())
            .sum::<usize>()
            + self.overlay_index.index_size_bytes()
            + self.post.index_size_bytes()
    }
}

/// P-TD-P: post-boundary PSP index over DH2H (write half).
pub struct PTdP {
    partitioned: Arc<Partitioned>,
    partition_chs: Arc<Vec<ContractionHierarchy>>,
    overlay: Arc<OverlayGraph>,
    overlay_index: Arc<H2HIndex>,
    post: Arc<PostBoundaryIndexes>,
}

impl PTdP {
    /// Builds P-TD-P over `graph` with `k` partitions.
    pub fn build(graph: &Graph, k: usize, seed: u64) -> Self {
        Self::build_pooled(graph, k, seed, &WorkerPool::sequential())
    }

    /// Builds P-TD-P with per-partition hierarchies, overlay labels, and
    /// extended-partition indexes constructed concurrently on `pool`.
    /// Identical result at any thread count.
    pub fn build_pooled(graph: &Graph, k: usize, seed: u64, pool: &WorkerPool) -> Self {
        let (partitioned, partition_chs, overlay) = build_substrate(graph, k, seed, pool);
        let overlay_index = H2HIndex::from_decomposition_pooled(
            TreeDecomposition::build_pooled(&overlay.graph, pool),
            pool,
        );
        let post = PostBoundaryIndexes::build_pooled(&partitioned, &overlay, &overlay_index, pool);
        PTdP {
            partitioned: Arc::new(partitioned),
            partition_chs: Arc::new(partition_chs),
            overlay: Arc::new(overlay),
            overlay_index: Arc::new(overlay_index),
            post: Arc::new(post),
        }
    }

    /// The partitioned view (for tests and experiments).
    pub fn partitioned(&self) -> &Partitioned {
        &self.partitioned
    }
}

impl IndexMaintainer for PTdP {
    fn name(&self) -> &'static str {
        "P-TD-P"
    }

    fn apply_batch(
        &mut self,
        _graph: &Graph,
        batch: &UpdateBatch,
        publisher: &SnapshotPublisher,
    ) -> UpdateTimeline {
        let mut timeline = UpdateTimeline::default();
        let t0 = Instant::now();
        let routed = Arc::make_mut(&mut self.partitioned).apply_batch(batch);
        timeline.push("U1: on-spot edge update", t0.elapsed());

        // No-boundary shortcut + overlay label update (steps 1-3 of the
        // post-boundary update procedure, Fig. 16).
        let t1 = Instant::now();
        let mut per_part = Vec::new();
        {
            let chs = Arc::make_mut(&mut self.partition_chs);
            for (i, ch) in chs.iter_mut().enumerate() {
                if routed.intra[i].is_empty() {
                    continue;
                }
                let changes = ch.apply_batch(
                    &self.partitioned.subgraphs[i].graph,
                    routed.intra[i].as_slice(),
                );
                per_part.push((i, changes));
            }
        }
        let overlay_batch = Arc::make_mut(&mut self.overlay).apply_changes(
            &self.partitioned,
            &routed.inter,
            &per_part,
        );
        Arc::make_mut(&mut self.overlay_index)
            .apply_batch(&self.overlay.graph, overlay_batch.as_slice());
        timeline.push("U2-3: overlay update", t1.elapsed());

        // Post-boundary index update (steps 4-5).
        let t2 = Instant::now();
        Arc::make_mut(&mut self.post).update(
            &self.partitioned,
            &self.overlay,
            &self.overlay_index,
            &routed.intra,
        );
        publisher.publish(self.current_view());
        timeline.push("U4: post-boundary index update", t2.elapsed());
        timeline
    }

    fn current_view(&self) -> Arc<dyn QueryView> {
        Arc::new(PTdPView {
            partitioned: Arc::clone(&self.partitioned),
            partition_chs: Arc::clone(&self.partition_chs),
            overlay: Arc::clone(&self.overlay),
            overlay_index: Arc::clone(&self.overlay_index),
            post: Arc::clone(&self.post),
        })
    }

    fn index_size_bytes(&self) -> usize {
        self.partition_chs
            .iter()
            .map(|c| c.index_size_bytes())
            .sum::<usize>()
            + self.overlay_index.index_size_bytes()
            + self.post.index_size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htsp_graph::gen::{grid, WeightRange};
    use htsp_graph::{QuerySet, UpdateGenerator};
    use htsp_search::dijkstra_distance;

    fn check<I: IndexMaintainer>(idx: &I, g: &Graph, count: usize, seed: u64) {
        let qs = QuerySet::random(g, count, seed);
        let view = idx.current_view();
        for q in &qs {
            assert_eq!(
                view.distance(q.source, q.target),
                dijkstra_distance(g, q.source, q.target),
                "{} mismatch for {:?}",
                idx.name(),
                q
            );
        }
    }

    #[test]
    fn nchp_exact_before_and_after_updates() {
        let mut g = grid(9, 9, WeightRange::new(1, 20), 31);
        let mut idx = NChP::build(&g, 4, 1);
        check(&idx, &g, 120, 3);
        let mut gen = UpdateGenerator::new(5);
        for round in 0..2 {
            let batch = gen.generate(&g, 20);
            g.apply_batch(&batch);
            let publisher = SnapshotPublisher::new(idx.current_view());
            let timeline = idx.apply_batch(&g, &batch, &publisher);
            assert!(timeline.stages.len() >= 2);
            assert_eq!(publisher.version(), 1);
            check(&idx, &g, 80, 10 + round);
        }
    }

    #[test]
    fn ptdp_exact_before_and_after_updates() {
        let mut g = grid(9, 9, WeightRange::new(1, 20), 37);
        let mut idx = PTdP::build(&g, 4, 2);
        check(&idx, &g, 120, 4);
        let mut gen = UpdateGenerator::new(6);
        for round in 0..2 {
            let batch = gen.generate(&g, 20);
            g.apply_batch(&batch);
            let publisher = SnapshotPublisher::new(idx.current_view());
            let timeline = idx.apply_batch(&g, &batch, &publisher);
            assert!(timeline.total().as_nanos() > 0);
            assert_eq!(publisher.version(), 1);
            check(&idx, &g, 80, 20 + round);
        }
    }

    #[test]
    fn index_sizes_reported() {
        let g = grid(8, 8, WeightRange::new(1, 9), 3);
        let nchp = NChP::build(&g, 4, 1);
        let ptdp = PTdP::build(&g, 4, 1);
        assert!(IndexMaintainer::index_size_bytes(&nchp) > 0);
        // P-TD-P additionally stores labels, so it is the larger index.
        assert!(
            IndexMaintainer::index_size_bytes(&ptdp) > IndexMaintainer::index_size_bytes(&nchp)
        );
    }
}
