//! The Partitioned-CH (PCH) query: a bidirectional upward search over the
//! union of the partition shortcut arrays and the overlay shortcut arrays.
//!
//! This is the query engine of N-CH-P \[35\] and of PMHL's Q-Stage 2: it only
//! needs the shortcut arrays, which become consistent right after the
//! no-boundary shortcut update (U-Stage 2), long before any label is repaired.
//!
//! The search works in *global* vertex ids. For an interior vertex the upward
//! arcs are its partition hierarchy's arcs (translated to global ids); for a
//! boundary vertex they are its overlay hierarchy arcs. Because partition
//! orders are boundary-first and the overlay preserves global boundary
//! distances (Theorem 2), the standard CH meeting argument applies to the
//! union graph.

use crate::overlay::OverlayGraph;
use crate::partitioned::Partitioned;
use htsp_ch::ContractionHierarchy;
use htsp_graph::{Dist, VertexId, INF};
use htsp_search::MinHeap;

/// Reusable PCH query state.
#[derive(Clone, Debug)]
pub struct PchSearcher {
    dist_f: Vec<Dist>,
    dist_b: Vec<Dist>,
    touched: Vec<VertexId>,
    heap_f: MinHeap,
    heap_b: MinHeap,
}

impl PchSearcher {
    /// Creates query state for graphs with `n` (global) vertices.
    pub fn new(n: usize) -> Self {
        PchSearcher {
            dist_f: vec![INF; n],
            dist_b: vec![INF; n],
            touched: Vec::new(),
            heap_f: MinHeap::new(),
            heap_b: MinHeap::new(),
        }
    }

    fn reset(&mut self, n: usize) {
        if self.dist_f.len() < n {
            self.dist_f.resize(n, INF);
            self.dist_b.resize(n, INF);
        }
        for v in self.touched.drain(..) {
            self.dist_f[v.index()] = INF;
            self.dist_b[v.index()] = INF;
        }
        self.heap_f.clear();
        self.heap_b.clear();
    }

    /// Shortest distance between global vertices `s` and `t` over the union of
    /// the partition hierarchies (`partition_chs[i]` indexes partition `i`)
    /// and the overlay hierarchy.
    ///
    /// Generic over the hierarchy container (`P`): plain slices/vectors work,
    /// and so does the chunk-granular
    /// [`CowVec`](htsp_graph::cow::CowVec)`<PartitionIndex>` PMHL keeps its
    /// partition indexes in.
    pub fn distance<P, C>(
        &mut self,
        partitioned: &Partitioned,
        partition_chs: &P,
        overlay: &OverlayGraph,
        overlay_ch: &ContractionHierarchy,
        s: VertexId,
        t: VertexId,
    ) -> Dist
    where
        P: std::ops::Index<usize, Output = C> + ?Sized,
        C: AsRef<ContractionHierarchy>,
    {
        if s == t {
            return Dist::ZERO;
        }
        let n = partitioned.graph.num_vertices();
        self.reset(n);
        self.dist_f[s.index()] = Dist::ZERO;
        self.dist_b[t.index()] = Dist::ZERO;
        self.touched.push(s);
        self.touched.push(t);
        self.heap_f.push(Dist::ZERO, s);
        self.heap_b.push(Dist::ZERO, t);
        let mut best = INF;

        // Enumerate the upward arcs of a global vertex into `out`.
        let expand = |v: VertexId, out: &mut Vec<(VertexId, u32)>| {
            out.clear();
            if let Some(lv) = overlay.to_local(v) {
                for &(u, w) in overlay_ch.up_arcs(lv) {
                    out.push((overlay.to_global(u), w));
                }
            } else {
                let pi = partitioned.partition.partition_of(v);
                let sub = &partitioned.subgraphs[pi];
                let lv = sub.to_local(v).expect("vertex must be in its partition");
                for &(u, w) in partition_chs[pi].as_ref().up_arcs(lv) {
                    out.push((sub.to_global(u), w));
                }
            }
        };

        let mut arcs: Vec<(VertexId, u32)> = Vec::new();
        loop {
            let top_f = self.heap_f.peek().map(|(d, _)| d).unwrap_or(INF);
            let top_b = self.heap_b.peek().map(|(d, _)| d).unwrap_or(INF);
            let forward_active = top_f < best;
            let backward_active = top_b < best;
            if !forward_active && !backward_active {
                break;
            }
            let forward = if forward_active && backward_active {
                top_f <= top_b
            } else {
                forward_active
            };
            let (heap, dist_this, dist_other) = if forward {
                (&mut self.heap_f, &mut self.dist_f, &self.dist_b)
            } else {
                (&mut self.heap_b, &mut self.dist_b, &self.dist_f)
            };
            let (d, v) = match heap.pop() {
                Some(x) => x,
                None => break,
            };
            if d > dist_this[v.index()] {
                continue;
            }
            let other = dist_other[v.index()];
            if other.is_finite() {
                let cand = d.saturating_add(other);
                if cand < best {
                    best = cand;
                }
            }
            expand(v, &mut arcs);
            for &(u, w) in &arcs {
                let nd = d.saturating_add_weight(w);
                if nd < dist_this[u.index()] {
                    if dist_this[u.index()].is_inf() {
                        self.touched.push(u);
                    }
                    dist_this[u.index()] = nd;
                    heap.push(nd, u);
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition_index::build_partition_ch;
    use htsp_ch::{OrderingStrategy, ShortcutMode};
    use htsp_graph::gen::{grid, WeightRange};
    use htsp_graph::{QuerySet, UpdateGenerator};
    use htsp_partition::partition_region_growing;
    use htsp_search::dijkstra_distance;

    fn setup(
        k: usize,
    ) -> (
        Partitioned,
        Vec<ContractionHierarchy>,
        OverlayGraph,
        ContractionHierarchy,
    ) {
        let g = grid(10, 10, WeightRange::new(1, 20), 9);
        let pr = partition_region_growing(&g, k, 2);
        let p = Partitioned::build(g, pr);
        let chs: Vec<ContractionHierarchy> = p.subgraphs.iter().map(build_partition_ch).collect();
        let refs: Vec<&ContractionHierarchy> = chs.iter().collect();
        let overlay = OverlayGraph::build(&p, &refs);
        let overlay_ch = ContractionHierarchy::build(
            &overlay.graph,
            OrderingStrategy::MinDegree,
            ShortcutMode::AllPairs,
        );
        (p, chs, overlay, overlay_ch)
    }

    #[test]
    fn pch_matches_dijkstra() {
        let (p, chs, overlay, overlay_ch) = setup(4);
        let refs: Vec<&ContractionHierarchy> = chs.iter().collect();
        let mut pch = PchSearcher::new(p.graph.num_vertices());
        let qs = QuerySet::random(&p.graph, 200, 31);
        for q in &qs {
            let expect = dijkstra_distance(&p.graph, q.source, q.target);
            let got = pch.distance(&p, &refs, &overlay, &overlay_ch, q.source, q.target);
            assert_eq!(got, expect, "PCH mismatch for {:?}", q);
        }
    }

    #[test]
    fn pch_stays_exact_after_updates() {
        let (mut p, mut chs, mut overlay, mut overlay_ch) = setup(4);
        let mut gen = UpdateGenerator::new(17);
        for round in 0..3 {
            let batch = gen.generate(&p.graph, 20);
            let routed = p.apply_batch(&batch);
            let mut per_part = Vec::new();
            for (i, ch) in chs.iter_mut().enumerate() {
                let changes = ch.apply_batch(&p.subgraphs[i].graph, routed.intra[i].as_slice());
                per_part.push((i, changes));
            }
            let overlay_batch = overlay.apply_changes(&p, &routed.inter, &per_part);
            overlay_ch.apply_batch(&overlay.graph, overlay_batch.as_slice());
            let refs: Vec<&ContractionHierarchy> = chs.iter().collect();
            let mut pch = PchSearcher::new(p.graph.num_vertices());
            let qs = QuerySet::random(&p.graph, 80, 40 + round);
            for q in &qs {
                let expect = dijkstra_distance(&p.graph, q.source, q.target);
                let got = pch.distance(&p, &refs, &overlay, &overlay_ch, q.source, q.target);
                assert_eq!(got, expect, "PCH mismatch after update for {:?}", q);
            }
        }
    }
}
