//! Post-boundary strategy: extended partitions `{G'_i}` and their corrected
//! indexes `{L'_i}` (§III-C, Steps 4-5).
//!
//! The extended partition `G'_i` adds, for every pair of boundary vertices of
//! `G_i`, a shortcut edge carrying the *global* shortest distance between them
//! (obtained by querying the overlay index `L̃`). An H2H index built on `G'_i`
//! therefore answers same-partition queries with global correctness, without
//! any concatenation — the property PMHL's Q-Stage 4 and P-TD-P rely on.

use crate::overlay::OverlayGraph;
use crate::partitioned::Partitioned;
use htsp_graph::cow::{CowStats, CowVec};
use htsp_graph::{
    Dist, EdgeId, EdgeUpdate, Graph, GraphBuilder, UpdateBatch, VertexId, Weight, WorkerPool,
};
use htsp_td::H2HIndex;
use std::time::Duration;

/// One extended partition: the graph `G'_i`, the bookkeeping of its boundary
/// pair edges, and the corrected index `L'_i`.
#[derive(Clone, Debug)]
pub struct ExtendedPartition {
    /// The extended graph `G'_i` in the partition's local vertex ids. Edge ids
    /// `0..m_i` coincide with the original subgraph's edge ids; boundary-pair
    /// shortcut edges follow.
    pub graph: Graph,
    /// For every boundary pair that received an edge: `(edge id in the
    /// extended graph, local b1, local b2, whether the edge also exists as an
    /// original intra edge)`.
    pair_edges: Vec<(EdgeId, VertexId, VertexId, bool)>,
    /// The corrected partition index `L'_i`.
    pub index: H2HIndex,
}

/// The post-boundary indexes of all partitions.
///
/// The extended partitions live in a [`CowVec`] with one partition per
/// chunk: cloning the whole structure (what snapshot publication does) bumps
/// one `Arc` per partition, and an update round that repairs `k` partitions
/// clones exactly those `k` — untouched partitions stay shared with every
/// outstanding snapshot.
#[derive(Clone, Debug)]
pub struct PostBoundaryIndexes {
    /// One extended partition per partition id (chunk size 1).
    pub partitions: CowVec<ExtendedPartition>,
}

/// Queries the global distance between two boundary vertices through the
/// overlay index.
fn overlay_boundary_distance(
    overlay: &OverlayGraph,
    overlay_index: &H2HIndex,
    a: VertexId,
    b: VertexId,
) -> Dist {
    match (overlay.to_local(a), overlay.to_local(b)) {
        (Some(la), Some(lb)) => overlay_index.distance(la, lb),
        _ => htsp_graph::INF,
    }
}

impl PostBoundaryIndexes {
    /// Builds `{G'_i}` and `{L'_i}` (Steps 4-5 of the post-boundary strategy).
    pub fn build(
        partitioned: &Partitioned,
        overlay: &OverlayGraph,
        overlay_index: &H2HIndex,
    ) -> Self {
        Self::build_pooled(
            partitioned,
            overlay,
            overlay_index,
            &WorkerPool::sequential(),
        )
    }

    /// Builds the extended partitions concurrently on `pool`, one task per
    /// partition. Each partition's `G'_i`/`L'_i` depends only on the shared
    /// overlay index, so the result is identical at any thread count.
    pub fn build_pooled(
        partitioned: &Partitioned,
        overlay: &OverlayGraph,
        overlay_index: &H2HIndex,
        pool: &WorkerPool,
    ) -> Self {
        let partitions = pool.run("post_boundary", partitioned.subgraphs.len(), |pi| {
            let sub = &partitioned.subgraphs[pi];
            let n = sub.graph.num_vertices();
            let mut builder = GraphBuilder::new(n);
            for (_, u, v, w) in sub.graph.edges() {
                builder.add_edge(u, v, w);
            }
            let mut pair_edges = Vec::new();
            let nb = sub.boundary_local.len();
            for i in 0..nb {
                for j in (i + 1)..nb {
                    let (b1, b2) = (sub.boundary_local[i], sub.boundary_local[j]);
                    let d = overlay_boundary_distance(
                        overlay,
                        overlay_index,
                        sub.to_global(b1),
                        sub.to_global(b2),
                    );
                    if d.is_inf() {
                        continue;
                    }
                    match sub.graph.find_edge(b1, b2) {
                        Some((e, _)) => {
                            // Merge with the existing intra edge (min weight).
                            builder.add_edge(b1, b2, d.0.max(1));
                            pair_edges.push((e, b1, b2, true));
                        }
                        None => {
                            let next = EdgeId::from_index(builder.num_edges());
                            if builder.add_edge(b1, b2, d.0.max(1)) {
                                pair_edges.push((next, b1, b2, false));
                            }
                        }
                    }
                }
            }
            let graph = builder.build();
            let index = H2HIndex::build(&graph);
            ExtendedPartition {
                graph,
                pair_edges,
                index,
            }
        });
        PostBoundaryIndexes {
            partitions: CowVec::from_vec(partitions, 1),
        }
    }

    /// Cumulative copy-on-write clone effort: partition-granular clones of
    /// the extended partitions plus the chunk clones inside each `L'_i`.
    pub fn cow_stats(&self) -> CowStats {
        self.partitions
            .iter()
            .fold(self.partitions.stats(), |acc, ext| {
                acc.plus(ext.index.cow_stats())
            })
    }

    /// Same-partition distance for two global vertices in partition `pi`,
    /// answered solely by `L'_i` (globally correct).
    pub fn same_partition_distance(
        &self,
        partitioned: &Partitioned,
        pi: usize,
        s: VertexId,
        t: VertexId,
    ) -> Dist {
        let sub = &partitioned.subgraphs[pi];
        match (sub.to_local(s), sub.to_local(t)) {
            (Some(ls), Some(lt)) => self.partitions[pi].index.distance(ls, lt),
            _ => htsp_graph::INF,
        }
    }

    /// Distance from an in-partition vertex (local id) to one of its
    /// partition's boundary vertices (local id), via `L'_i`.
    pub fn distance_to_boundary(&self, pi: usize, v_local: VertexId, b_local: VertexId) -> Dist {
        self.partitions[pi].index.distance(v_local, b_local)
    }

    /// Repairs the extended partitions and `{L'_i}` after the overlay index
    /// has been updated (U-Stage 4). `intra` carries the routed local updates
    /// of this batch. Returns the partitions whose `L'_i` labels changed and
    /// the total time spent.
    pub fn update(
        &mut self,
        partitioned: &Partitioned,
        overlay: &OverlayGraph,
        overlay_index: &H2HIndex,
        intra: &[UpdateBatch],
    ) -> (Vec<usize>, Duration) {
        let start = std::time::Instant::now();
        let mut changed_partitions = Vec::new();
        // An index loop rather than an iterator: the read pass borrows the
        // shared partition, and only a non-empty batch upgrades `pi` to a
        // `make_mut` (which would conflict with any live iterator borrow).
        #[allow(clippy::needless_range_loop)]
        for pi in 0..self.partitions.len() {
            // Read-only pass over the shared partition: decide what changed.
            let ext = &self.partitions[pi];
            let sub = &partitioned.subgraphs[pi];
            let mut batch = UpdateBatch::new();
            // Plain intra updates first (skip boundary-pair edges; those are
            // recomputed below from the overlay).
            for upd in intra[pi].iter() {
                let is_pair = ext
                    .pair_edges
                    .iter()
                    .any(|&(e, _, _, is_intra)| is_intra && e == upd.edge);
                if is_pair {
                    continue;
                }
                let old = ext.graph.edge_weight(upd.edge);
                if old != upd.new_weight {
                    batch.push(EdgeUpdate::new(upd.edge, old, upd.new_weight));
                }
            }
            // Boundary-pair pass: the desired weight is the global boundary
            // distance, merged with the current intra edge weight if one exists.
            for &(e, b1, b2, is_intra) in &ext.pair_edges {
                let d = overlay_boundary_distance(
                    overlay,
                    overlay_index,
                    sub.to_global(b1),
                    sub.to_global(b2),
                );
                let mut desired: Weight = if d.is_inf() { u32::MAX - 1 } else { d.0.max(1) };
                if is_intra {
                    desired = desired.min(sub.graph.edge_dist(b1, b2).0.max(1));
                }
                let old = ext.graph.edge_weight(e);
                if old != desired {
                    batch.push(EdgeUpdate::new(e, old, desired));
                }
            }
            if batch.is_empty() {
                continue;
            }
            // Only now clone the partition out from under outstanding
            // snapshots (one chunk = one partition).
            let ext = self.partitions.make_mut(pi);
            ext.graph.apply_batch(&batch);
            let report = ext.index.apply_batch(&ext.graph, batch.as_slice());
            if !report.affected_labels.is_empty() || !report.shortcut_changes.is_empty() {
                changed_partitions.push(pi);
            }
        }
        (changed_partitions, start.elapsed())
    }

    /// Total label entries across all `L'_i`.
    pub fn index_size_bytes(&self) -> usize {
        self.partitions
            .iter()
            .map(|p| p.index.index_size_bytes())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition_index::build_partition_ch;
    use htsp_ch::ContractionHierarchy;
    use htsp_graph::gen::{grid, WeightRange};
    use htsp_graph::UpdateGenerator;
    use htsp_partition::partition_region_growing;
    use htsp_search::dijkstra_distance;
    use htsp_td::TreeDecomposition;

    fn setup() -> (
        Partitioned,
        Vec<ContractionHierarchy>,
        OverlayGraph,
        H2HIndex,
        PostBoundaryIndexes,
    ) {
        let g = grid(9, 9, WeightRange::new(1, 20), 17);
        let pr = partition_region_growing(&g, 4, 3);
        let p = Partitioned::build(g, pr);
        let chs: Vec<ContractionHierarchy> = p.subgraphs.iter().map(build_partition_ch).collect();
        let refs: Vec<&ContractionHierarchy> = chs.iter().collect();
        let overlay = OverlayGraph::build(&p, &refs);
        let overlay_index = H2HIndex::from_decomposition(TreeDecomposition::build(&overlay.graph));
        let post = PostBoundaryIndexes::build(&p, &overlay, &overlay_index);
        (p, chs, overlay, overlay_index, post)
    }

    #[test]
    fn same_partition_queries_are_globally_correct() {
        let (p, _chs, _overlay, _oi, post) = setup();
        for pi in 0..p.num_partitions() {
            let members = p.partition.vertices(pi);
            for i in (0..members.len().saturating_sub(1)).step_by(2) {
                let (s, t) = (members[i], members[i + 1]);
                let expect = dijkstra_distance(&p.graph, s, t);
                let got = post.same_partition_distance(&p, pi, s, t);
                assert_eq!(got, expect, "post-boundary mismatch {s}->{t}");
            }
        }
    }

    #[test]
    fn update_keeps_same_partition_queries_correct() {
        let (mut p, mut chs, mut overlay, mut overlay_index, mut post) = setup();
        let mut gen = UpdateGenerator::new(23);
        for _round in 0..2 {
            let batch = gen.generate(&p.graph, 25);
            let routed = p.apply_batch(&batch);
            let mut per_part = Vec::new();
            for (i, ch) in chs.iter_mut().enumerate() {
                let changes = ch.apply_batch(&p.subgraphs[i].graph, routed.intra[i].as_slice());
                per_part.push((i, changes));
            }
            let overlay_batch = overlay.apply_changes(&p, &routed.inter, &per_part);
            overlay_index.apply_batch(&overlay.graph, overlay_batch.as_slice());
            post.update(&p, &overlay, &overlay_index, &routed.intra);
            for pi in 0..p.num_partitions() {
                let members = p.partition.vertices(pi);
                for i in (0..members.len().saturating_sub(1)).step_by(5) {
                    let (s, t) = (members[i], members[i + 1]);
                    let expect = dijkstra_distance(&p.graph, s, t);
                    let got = post.same_partition_distance(&p, pi, s, t);
                    assert_eq!(got, expect, "post-boundary mismatch {s}->{t} after update");
                }
            }
        }
    }
}
