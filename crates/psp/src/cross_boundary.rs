//! The cross-boundary strategy (§IV-A): a flat global 2-hop labeling `L*`
//! that eliminates distance concatenation for cross-partition queries.
//!
//! For a boundary vertex the label is inherited directly from the overlay
//! index `L̃`; for an interior vertex `v ∈ G_i \ B_i` the label towards every
//! overlay hub `c` is `min_{b ∈ B_i} d_{L'_i}(v, b) + L̃(b, c)` (Lemma 2).
//! Cross-partition queries then reduce to a single 2-hop join, cutting the
//! query cost by the `O(|B_max|²)` concatenation factor.
//!
//! This implementation stores the labels as sorted `(hub, distance)` vectors —
//! a flat representation of the index rather than the tree-aggregated layout
//! of Algorithm 1; the asymptotic query cost (one sorted-merge over the two
//! label sets) is the same, and DESIGN.md records the simplification.

use crate::overlay::OverlayGraph;
use crate::partitioned::Partitioned;
use crate::post_boundary::PostBoundaryIndexes;
use htsp_graph::cow::{CowStats, CowTable, DEFAULT_CHUNK};
use htsp_graph::{Dist, VertexId, INF};
use htsp_td::H2HIndex;
use rustc_hash::{FxHashMap, FxHashSet};
use std::time::Duration;

/// The flat cross-boundary labeling `L*`.
///
/// The per-vertex labels live in a chunked copy-on-write [`CowTable`], so a
/// U-Stage 5 that relabels the interior of `k` affected partitions clones
/// the chunks those vertices fall in, not the whole labeling, even while a
/// snapshot pins the pre-update labels.
#[derive(Clone, Debug)]
pub struct CrossBoundaryIndex {
    /// `labels[v]` — sorted `(hub global id, distance)` pairs. Hubs are always
    /// overlay (boundary) vertices, which suffices for cross-partition queries
    /// (Lemma 2, cases 2-3).
    labels: CowTable<(u32, Dist)>,
}

/// Extracts the overlay 2-hop label of a boundary vertex as
/// `(hub global id, distance)` pairs (its overlay ancestors plus itself).
fn overlay_label(
    overlay: &OverlayGraph,
    overlay_index: &H2HIndex,
    b_global: VertexId,
) -> Vec<(u32, Dist)> {
    let lb = match overlay.to_local(b_global) {
        Some(l) => l,
        None => return Vec::new(),
    };
    let td = overlay_index.decomposition();
    let label = overlay_index.label(lb);
    let mut out: Vec<(u32, Dist)> = td
        .ancestors(lb)
        .iter()
        .enumerate()
        .map(|(d, &a)| (overlay.to_global(a).0, label[d]))
        .collect();
    out.push((b_global.0, Dist::ZERO));
    out.sort_unstable_by_key(|&(h, _)| h);
    out
}

impl CrossBoundaryIndex {
    /// Builds `L*` from the overlay index and the post-boundary partition
    /// indexes (Step 6 of PMHL construction).
    pub fn build(
        partitioned: &Partitioned,
        overlay: &OverlayGraph,
        overlay_index: &H2HIndex,
        post: &PostBoundaryIndexes,
    ) -> Self {
        let n = partitioned.graph.num_vertices();
        let mut labels = vec![Vec::new(); n];
        for (v, label) in labels.iter_mut().enumerate() {
            let vid = VertexId::from_index(v);
            *label = Self::compute_label(partitioned, overlay, overlay_index, post, vid);
        }
        CrossBoundaryIndex {
            labels: CowTable::from_rows(labels, DEFAULT_CHUNK),
        }
    }

    /// Cumulative copy-on-write clone effort of the label table.
    pub fn cow_stats(&self) -> CowStats {
        self.labels.stats()
    }

    fn compute_label(
        partitioned: &Partitioned,
        overlay: &OverlayGraph,
        overlay_index: &H2HIndex,
        post: &PostBoundaryIndexes,
        v: VertexId,
    ) -> Vec<(u32, Dist)> {
        if partitioned.partition.is_boundary(v) {
            return overlay_label(overlay, overlay_index, v);
        }
        let pi = partitioned.partition.partition_of(v);
        let sub = &partitioned.subgraphs[pi];
        let lv = match sub.to_local(v) {
            Some(l) => l,
            None => return Vec::new(),
        };
        let mut acc: FxHashMap<u32, Dist> = FxHashMap::default();
        for &lb in &sub.boundary_local {
            let dvb = post.distance_to_boundary(pi, lv, lb);
            if dvb.is_inf() {
                continue;
            }
            let b_global = sub.to_global(lb);
            for (hub, d) in overlay_label(overlay, overlay_index, b_global) {
                let cand = dvb.saturating_add(d);
                acc.entry(hub)
                    .and_modify(|cur| {
                        if cand < *cur {
                            *cur = cand;
                        }
                    })
                    .or_insert(cand);
            }
        }
        let mut out: Vec<(u32, Dist)> = acc.into_iter().collect();
        out.sort_unstable_by_key(|&(h, _)| h);
        out
    }

    /// Label of `v` (sorted by hub id).
    pub fn label(&self, v: VertexId) -> &[(u32, Dist)] {
        self.labels.row(v.index())
    }

    /// Cross-partition distance by a sorted-merge 2-hop join over the two
    /// labels. Returns `INF` if the labels share no hub.
    pub fn cross_distance(&self, s: VertexId, t: VertexId) -> Dist {
        let (a, b) = (self.labels.row(s.index()), self.labels.row(t.index()));
        let (mut i, mut j) = (0usize, 0usize);
        let mut best = INF;
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    let cand = a[i].1.saturating_add(b[j].1);
                    if cand < best {
                        best = cand;
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        best
    }

    /// Repairs `L*` after the overlay and post-boundary indexes have been
    /// updated (U-Stage 5 of PMHL).
    ///
    /// `overlay_changed_boundary` lists boundary vertices whose overlay labels
    /// changed; `post_changed_partitions` lists partitions whose `L'_i` labels
    /// changed. Following §IV-A, the labels of every interior vertex of an
    /// affected partition are recomputed, and boundary labels are re-inherited
    /// where the overlay changed. Returns the number of recomputed labels and
    /// the time spent.
    pub fn update(
        &mut self,
        partitioned: &Partitioned,
        overlay: &OverlayGraph,
        overlay_index: &H2HIndex,
        post: &PostBoundaryIndexes,
        overlay_changed_boundary: &[VertexId],
        post_changed_partitions: &[usize],
    ) -> (usize, Duration) {
        let start = std::time::Instant::now();
        let mut affected_partitions: FxHashSet<usize> =
            post_changed_partitions.iter().copied().collect();
        let mut recomputed = 0usize;
        for &b in overlay_changed_boundary {
            let g = overlay.to_global(b);
            let new = overlay_label(overlay, overlay_index, g);
            // Write only labels whose values moved: the copy-on-write clone
            // volume then tracks the changed label set, not the recomputed
            // one.
            if *self.labels.row(g.index()) != new[..] {
                *self.labels.make_mut(g.index()) = new;
            }
            recomputed += 1;
            affected_partitions.insert(partitioned.partition.partition_of(g));
        }
        for &pi in &affected_partitions {
            for &v in partitioned.partition.vertices(pi) {
                if partitioned.partition.is_boundary(v) {
                    continue;
                }
                let new = Self::compute_label(partitioned, overlay, overlay_index, post, v);
                if *self.labels.row(v.index()) != new[..] {
                    *self.labels.make_mut(v.index()) = new;
                }
                recomputed += 1;
            }
        }
        (recomputed, start.elapsed())
    }

    /// Approximate size of `L*` in bytes.
    pub fn index_size_bytes(&self) -> usize {
        self.labels.num_entries() * std::mem::size_of::<(u32, Dist)>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition_index::build_partition_ch;
    use htsp_ch::ContractionHierarchy;
    use htsp_graph::gen::{grid, WeightRange};
    use htsp_graph::QuerySet;
    use htsp_partition::partition_region_growing;
    use htsp_search::dijkstra_distance;
    use htsp_td::TreeDecomposition;

    fn setup() -> (
        Partitioned,
        OverlayGraph,
        H2HIndex,
        PostBoundaryIndexes,
        CrossBoundaryIndex,
    ) {
        let g = grid(9, 9, WeightRange::new(1, 20), 19);
        let pr = partition_region_growing(&g, 4, 5);
        let p = Partitioned::build(g, pr);
        let chs: Vec<ContractionHierarchy> = p.subgraphs.iter().map(build_partition_ch).collect();
        let refs: Vec<&ContractionHierarchy> = chs.iter().collect();
        let overlay = OverlayGraph::build(&p, &refs);
        let overlay_index = H2HIndex::from_decomposition(TreeDecomposition::build(&overlay.graph));
        let post = PostBoundaryIndexes::build(&p, &overlay, &overlay_index);
        let cross = CrossBoundaryIndex::build(&p, &overlay, &overlay_index, &post);
        (p, overlay, overlay_index, post, cross)
    }

    #[test]
    fn cross_partition_queries_are_exact() {
        let (p, _overlay, _oi, _post, cross) = setup();
        let qs = QuerySet::random(&p.graph, 300, 7);
        let mut checked = 0;
        for q in &qs {
            if p.partition.same_partition(q.source, q.target) {
                continue;
            }
            let expect = dijkstra_distance(&p.graph, q.source, q.target);
            let got = cross.cross_distance(q.source, q.target);
            assert_eq!(got, expect, "cross-boundary mismatch for {:?}", q);
            checked += 1;
        }
        assert!(checked > 20, "too few cross-partition queries exercised");
    }

    #[test]
    fn labels_satisfy_two_hop_cover_for_boundary_pairs() {
        let (p, overlay, _oi, _post, cross) = setup();
        // Lemma 2, case 1: boundary-boundary pairs.
        let b: Vec<VertexId> = overlay.global_of.clone();
        for (i, &b1) in b.iter().enumerate().step_by(3) {
            for &b2 in b.iter().skip(i + 1).step_by(4) {
                if p.partition.same_partition(b1, b2) {
                    continue;
                }
                assert_eq!(
                    cross.cross_distance(b1, b2),
                    dijkstra_distance(&p.graph, b1, b2)
                );
            }
        }
    }

    #[test]
    fn index_size_positive_and_labels_sorted() {
        let (p, _overlay, _oi, _post, cross) = setup();
        assert!(cross.index_size_bytes() > 0);
        for v in p.graph.vertices() {
            let l = cross.label(v);
            for w in l.windows(2) {
                assert!(w[0].0 < w[1].0, "labels of {v} not strictly sorted");
            }
        }
    }
}
