//! # htsp-psp
//!
//! Partitioned Shortest Path (PSP) index machinery (§III-C, §IV of the paper).
//!
//! The crate provides the building blocks shared by the PSP baselines and by
//! PMHL in `htsp-core`:
//!
//! * [`Partitioned`] — the partitioned view of a road network: per-partition
//!   subgraphs with local↔global id maps, boundary bookkeeping, and routing of
//!   update batches into intra-/inter-partition changes.
//! * [`partition_index::PartitionIndex`] — a per-partition MHL (H2H + shortcut
//!   arrays) built with a boundary-first local order, exposing the
//!   contraction-generated boundary shortcuts of the *optimized no-boundary
//!   strategy* (Theorem 2).
//! * [`overlay::OverlayGraph`] — the overlay graph `G̃` over all boundary
//!   vertices and its MHL index `L̃`.
//! * [`pch::PchSearcher`] — the Partitioned-CH query: a bidirectional upward
//!   search over the union of the partition and overlay shortcut arrays
//!   (PMHL Q-Stage 2, and the query engine of N-CH-P).
//! * [`no_boundary`] / [`post_boundary`] — concatenation-based query
//!   processing of the no-boundary and post-boundary strategies, and the
//!   extended partitions `{G'_i}` with their corrected indexes `{L'_i}`.
//! * [`cross_boundary::CrossBoundaryIndex`] — the flat cross-boundary 2-hop
//!   labeling `L*` of §IV-A, eliminating distance concatenation for
//!   cross-partition queries.
//! * [`baselines`] — the PSP baselines of the evaluation: N-CH-P
//!   (update-oriented, no-boundary + CH) and P-TD-P (query-oriented,
//!   post-boundary + H2H).

#![warn(missing_docs)]

pub mod baselines;
pub mod cross_boundary;
pub mod no_boundary;
pub mod overlay;
pub mod partition_index;
pub mod partitioned;
pub mod pch;
pub mod post_boundary;

pub use baselines::{NChP, PTdP};
pub use cross_boundary::CrossBoundaryIndex;
pub use overlay::{OverlayEdgeSource, OverlayGraph, OverlayMaintainer};
pub use partition_index::PartitionIndex;
pub use partitioned::{Partitioned, RoutedUpdates, Subgraph};
pub use pch::PchSearcher;
pub use post_boundary::{ExtendedPartition, PostBoundaryIndexes};
