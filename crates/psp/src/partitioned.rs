//! The partitioned view of a road network.

use htsp_graph::{EdgeId, Graph, GraphBuilder, UpdateBatch, VertexId, Weight};
use htsp_partition::PartitionResult;
use rustc_hash::FxHashMap;

/// One partition's induced subgraph together with its id mappings.
#[derive(Clone, Debug)]
pub struct Subgraph {
    /// The induced subgraph over intra-partition edges, in local vertex ids.
    pub graph: Graph,
    /// Local id → global id.
    pub global_of: Vec<VertexId>,
    /// Global id → local id.
    pub local_of: FxHashMap<VertexId, VertexId>,
    /// Local ids of this partition's boundary vertices.
    pub boundary_local: Vec<VertexId>,
    /// For each local edge, the corresponding global edge id.
    pub global_edge_of: Vec<EdgeId>,
    /// Global edge id → local edge id.
    local_edge_of: FxHashMap<EdgeId, EdgeId>,
}

impl Subgraph {
    /// Translates a global vertex id to this partition's local id.
    #[inline]
    pub fn to_local(&self, v: VertexId) -> Option<VertexId> {
        self.local_of.get(&v).copied()
    }

    /// Translates a local vertex id back to the global id.
    #[inline]
    pub fn to_global(&self, v: VertexId) -> VertexId {
        self.global_of[v.index()]
    }

    /// Local edge id of a global edge fully inside this partition.
    pub fn local_edge(&self, e: EdgeId) -> Option<EdgeId> {
        self.local_edge_of.get(&e).copied()
    }
}

/// A routed update batch: intra-partition updates translated to each
/// partition's local edge ids, plus the untranslated inter-partition updates.
#[derive(Clone, Debug, Default)]
pub struct RoutedUpdates {
    /// `intra[i]` — updates on edges inside partition `i`, with **local** edge
    /// ids.
    pub intra: Vec<UpdateBatch>,
    /// Updates on inter-partition edges (global edge ids).
    pub inter: UpdateBatch,
}

impl RoutedUpdates {
    /// Partitions whose subgraphs received at least one update.
    pub fn affected_partitions(&self) -> Vec<usize> {
        self.intra
            .iter()
            .enumerate()
            .filter(|(_, b)| !b.is_empty())
            .map(|(i, _)| i)
            .collect()
    }
}

/// The partitioned road network: global graph + per-partition subgraphs.
#[derive(Clone, Debug)]
pub struct Partitioned {
    /// The global graph with current weights.
    pub graph: Graph,
    /// The planar partition.
    pub partition: PartitionResult,
    /// Per-partition subgraph views.
    pub subgraphs: Vec<Subgraph>,
}

impl Partitioned {
    /// Builds the partitioned view. The subgraphs copy the current weights of
    /// `graph`.
    pub fn build(graph: Graph, partition: PartitionResult) -> Self {
        let k = partition.num_partitions();
        let mut subgraphs = Vec::with_capacity(k);
        for i in 0..k {
            let members = partition.vertices(i);
            let mut local_of: FxHashMap<VertexId, VertexId> = FxHashMap::default();
            local_of.reserve(members.len());
            for (li, &v) in members.iter().enumerate() {
                local_of.insert(v, VertexId::from_index(li));
            }
            let mut builder = GraphBuilder::new(members.len());
            let mut global_edge_of = Vec::new();
            // Collect intra edges in a deterministic order.
            for &v in members {
                for arc in graph.arcs(v) {
                    let u = arc.to;
                    if v < u {
                        if let (Some(&lv), Some(&lu)) = (local_of.get(&v), local_of.get(&u)) {
                            if builder.add_edge(lv, lu, arc.weight) {
                                global_edge_of.push(arc.edge);
                            }
                        }
                    }
                }
            }
            let sub = builder.build();
            let mut local_edge_of = FxHashMap::default();
            for (li, &ge) in global_edge_of.iter().enumerate() {
                local_edge_of.insert(ge, EdgeId::from_index(li));
            }
            let boundary_local = partition.boundary(i).iter().map(|b| local_of[b]).collect();
            subgraphs.push(Subgraph {
                graph: sub,
                global_of: members.to_vec(),
                local_of,
                boundary_local,
                global_edge_of,
                local_edge_of,
            });
        }
        Partitioned {
            graph,
            partition,
            subgraphs,
        }
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.subgraphs.len()
    }

    /// Routes a batch of updates: classifies each update as intra- or
    /// inter-partition and translates intra updates into local edge ids
    /// (§III-C / Appendix A scenarios).
    pub fn route_updates(&self, batch: &UpdateBatch) -> RoutedUpdates {
        let mut routed = RoutedUpdates {
            intra: vec![UpdateBatch::new(); self.num_partitions()],
            inter: UpdateBatch::new(),
        };
        for upd in batch.iter() {
            let (u, v) = self.graph.edge_endpoints(upd.edge);
            if self.partition.same_partition(u, v) {
                let i = self.partition.partition_of(u);
                let sub = &self.subgraphs[i];
                if let Some(le) = sub.local_edge(upd.edge) {
                    routed.intra[i].push(htsp_graph::EdgeUpdate::new(
                        le,
                        upd.old_weight,
                        upd.new_weight,
                    ));
                }
            } else {
                routed.inter.push(*upd);
            }
        }
        routed
    }

    /// Applies a batch to the global graph *and* to the affected subgraph
    /// copies (U-Stage 1), returning the routed updates for the later stages.
    pub fn apply_batch(&mut self, batch: &UpdateBatch) -> RoutedUpdates {
        self.graph.apply_batch(batch);
        let routed = self.route_updates(batch);
        for (i, local_batch) in routed.intra.iter().enumerate() {
            if !local_batch.is_empty() {
                self.subgraphs[i].graph.apply_batch(local_batch);
            }
        }
        routed
    }

    /// Current weight of an inter-partition edge.
    pub fn inter_edge_weight(&self, e: EdgeId) -> Weight {
        self.graph.edge_weight(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htsp_graph::gen::{grid, WeightRange};
    use htsp_graph::UpdateGenerator;
    use htsp_partition::partition_region_growing;
    use htsp_search::dijkstra_distance;

    fn setup(w: usize, h: usize, k: usize) -> Partitioned {
        let g = grid(w, h, WeightRange::new(1, 20), 7);
        let pr = partition_region_growing(&g, k, 3);
        Partitioned::build(g, pr)
    }

    #[test]
    fn subgraphs_cover_intra_edges_only() {
        let p = setup(10, 10, 4);
        let total_sub_edges: usize = p.subgraphs.iter().map(|s| s.graph.num_edges()).sum();
        assert_eq!(
            total_sub_edges + p.partition.inter_edges().len(),
            p.graph.num_edges()
        );
        for (i, sub) in p.subgraphs.iter().enumerate() {
            assert_eq!(sub.graph.num_vertices(), p.partition.vertices(i).len());
            sub.graph.validate().unwrap();
            // Id round trip.
            for v in sub.graph.vertices() {
                let g = sub.to_global(v);
                assert_eq!(sub.to_local(g), Some(v));
                assert_eq!(p.partition.partition_of(g), i);
            }
        }
    }

    #[test]
    fn subgraph_distances_upper_bound_global() {
        let p = setup(8, 8, 4);
        for sub in &p.subgraphs {
            let n = sub.graph.num_vertices();
            if n < 2 {
                continue;
            }
            let a = VertexId(0);
            let b = VertexId::from_index(n - 1);
            let local = dijkstra_distance(&sub.graph, a, b);
            let global = dijkstra_distance(&p.graph, sub.to_global(a), sub.to_global(b));
            assert!(global <= local, "global distance must not exceed local");
        }
    }

    #[test]
    fn route_updates_splits_intra_and_inter() {
        let p = setup(10, 10, 4);
        let mut gen = UpdateGenerator::new(5);
        let batch = gen.generate(&p.graph, 40);
        let routed = p.route_updates(&batch);
        let intra_total: usize = routed.intra.iter().map(|b| b.len()).sum();
        assert_eq!(intra_total + routed.inter.len(), batch.len());
        for upd in routed.inter.iter() {
            let (u, v) = p.graph.edge_endpoints(upd.edge);
            assert!(!p.partition.same_partition(u, v));
        }
    }

    #[test]
    fn apply_batch_keeps_subgraphs_in_sync() {
        let mut p = setup(8, 8, 4);
        let mut gen = UpdateGenerator::new(9);
        let batch = gen.generate(&p.graph, 30);
        p.apply_batch(&batch);
        // Every intra edge's weight must agree between global and local copies.
        for sub in &p.subgraphs {
            for (le, lu, lv, lw) in sub.graph.edges() {
                let ge = sub.global_edge_of[le.index()];
                assert_eq!(p.graph.edge_weight(ge), lw, "edge {lu}-{lv} out of sync");
            }
        }
    }

    #[test]
    fn affected_partitions_listed() {
        let p = setup(8, 8, 4);
        // Craft a batch touching exactly one intra edge.
        let sub0_edge = p.subgraphs[0].global_edge_of[0];
        let w = p.graph.edge_weight(sub0_edge);
        let batch =
            UpdateBatch::from_updates(vec![htsp_graph::EdgeUpdate::new(sub0_edge, w, w + 1)]);
        let routed = p.route_updates(&batch);
        assert_eq!(routed.affected_partitions(), vec![0]);
        assert!(routed.inter.is_empty());
    }
}
