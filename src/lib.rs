//! # htsp
//!
//! A from-scratch Rust reproduction of *"High Throughput Shortest Distance
//! Query Processing on Large Dynamic Road Networks"* (ICDE 2025).
//!
//! This facade crate re-exports the public API of every workspace crate so a
//! downstream user can depend on `htsp` alone:
//!
//! * [`graph`] — dynamic road-network model, synthetic generators, DIMACS
//!   parser, update batches, query workloads.
//! * [`search`] — Dijkstra / bidirectional Dijkstra / A*.
//! * [`ch`] — Contraction Hierarchies and DCH maintenance.
//! * [`td`] — MDE tree decomposition, H2H, DH2H.
//! * [`partition`] — region-growing partitioning and TD-partitioning.
//! * [`psp`] — Partitioned Shortest Path machinery (overlay graph, boundary
//!   strategies, N-CH-P / P-TD-P baselines).
//! * [`core`] — the paper's contributions: MHL, PMHL, PostMHL.
//! * [`baselines`] — BiDijkstra, DCH, DH2H and TOAIN wrappers.
//! * [`throughput`] — the HTSP system model (Lemma 1) and throughput harness.
//!
//! # Quickstart
//!
//! The index API is split into a read half and a write half: an
//! [`graph::IndexMaintainer`] owns the mutable machinery and publishes
//! immutable, thread-safe [`graph::QueryView`] snapshots through a
//! [`graph::SnapshotPublisher`] at the end of each completed update stage,
//! so queries keep flowing while the repair runs. Serving threads open a
//! per-thread [`graph::QuerySession`] on a view and drive point-to-point,
//! one-to-many, and matrix workloads through it.
//!
//! ```
//! use htsp::graph::{gen, IndexMaintainer, QuerySet, SnapshotPublisher, UpdateGenerator};
//! use htsp::core::{PostMhl, PostMhlConfig};
//!
//! // Build a small synthetic road network and a PostMHL index over it.
//! let mut road = gen::grid(16, 16, gen::WeightRange::new(1, 60), 7);
//! let mut index = PostMhl::build(&road, PostMhlConfig::default());
//!
//! // Open a session on an immutable snapshot (any number of threads could
//! // share the view, each with its own session) and answer queries.
//! let view = index.current_view();
//! let mut session = view.session();
//! let queries = QuerySet::random(&road, 10, 3);
//! for q in &queries {
//!     assert!(session.query(q).is_finite());
//! }
//! // Batch workloads share work across targets where the machinery allows.
//! let targets: Vec<_> = queries.iter().map(|q| q.target).collect();
//! let fan = session.one_to_many(queries.as_slice()[0].source, &targets);
//! assert_eq!(fan.len(), targets.len());
//! let m = session.matrix(&targets[..2], &targets);
//! assert_eq!((m.len(), m[0].len()), (2, targets.len()));
//! drop(session);
//!
//! // Traffic changes arrive in a batch; apply it and repair the index.
//! // Each completed update stage publishes a fresh snapshot.
//! let batch = UpdateGenerator::new(1).generate(&road, 20);
//! road.apply_batch(&batch);
//! let publisher = SnapshotPublisher::new(index.current_view());
//! let timeline = index.apply_batch(&road, &batch, &publisher);
//! assert_eq!(timeline.stages.len(), 5);
//! assert_eq!(publisher.version(), 4); // 4 query stages published
//! assert!(publisher.snapshot().distance(queries.as_slice()[0].source,
//!                                       queries.as_slice()[0].target).is_finite());
//! ```
//!
//! # Serving: the `RoadNetworkServer` facade
//!
//! Production deployments do not drive `apply_batch` by hand — they run a
//! [`RoadNetworkServer`]: one object owning the graph, the index maintenance
//! thread, the snapshot publisher, and (optionally) a pool of query workers.
//! Updates stream in asynchronously through its [`UpdateFeed`]
//! (`submit(EdgeUpdate) -> UpdateTicket`), are coalesced into batches under
//! a [`CoalescePolicy`] (max batch size `|U|`, max delay Δt — the Δt of
//! Lemma 1), and each ticket's `wait_visible()` gives read-your-writes:
//!
//! ```
//! use htsp::{AlgorithmKind, CoalescePolicy, RoadNetworkServer};
//! use htsp::graph::{gen, EdgeId, EdgeUpdate, IndexMaintainer};
//!
//! let road = gen::grid(12, 12, gen::WeightRange::new(1, 60), 7);
//! let server = RoadNetworkServer::builder()
//!     .algorithm(AlgorithmKind::Dch)       // any of the nine registry kinds
//!     .coalesce(CoalescePolicy::by_size(2))
//!     .query_workers(2)                    // batched DistanceService front-end
//!     .start(&road);
//!
//! // Traffic: an edge slows down; submit the change while queries keep
//! // flowing against the published snapshots.
//! let e = EdgeId::from_index(17);
//! let old = road.edge_weight(e);
//! let t0 = server.submit(EdgeUpdate::new(e, old, old + 30));
//! let t1 = server.submit(EdgeUpdate::new(e, old + 30, old + 35));
//! let visibility = t1.wait_visible();      // read-your-writes barrier
//! assert_eq!(server.snapshot().graph().edge_weight(e), old + 35);
//! let outcome = t0.wait_applied();         // full staged-repair report
//! assert_eq!(outcome.batch_len, 2);        // both updates coalesced
//! let index = server.shutdown();           // machinery handed back
//! assert_eq!(index.name(), "DCH");
//! ```
//!
//! To *measure* throughput under concurrent maintenance, drive the same
//! server with [`throughput::QueryEngine`] (single-call, session-batched,
//! and Zipf hot-pair workload modes) or the Lemma 1 model harness
//! [`throughput::ThroughputHarness`]; to *serve* batched traffic, see
//! [`throughput::DistanceService`] (a queue of `QueryBatch` requests drained
//! by session-pinning workers, started by `query_workers(n)`). The service
//! queue is governed by an [`AdmissionPolicy`] (unbounded blocking, bounded
//! shedding, or per-request deadlines), and the open-loop load subsystem
//! ([`throughput::loadgen`]) measures it the way real traffic would: seeded
//! Poisson arrival streams, weighted request mixes, latency histograms with
//! p50/p95/p99 [`SloTarget`] verdicts, and a knee search for the highest
//! offered rate that still meets the SLO.
//!
//! For skewed traffic, `ServerBuilder::result_cache(CacheConfig)` enables
//! the snapshot-versioned [`DistanceCache`]: answers are memoized per
//! `(source, target)` tagged with the publisher version they were computed
//! against, so a publication implicitly invalidates the cache and a hit can
//! never cross a version boundary (off by default — see
//! [`throughput::cache`] for when it helps vs hurts).
//!
//! Snapshot isolation rides on the chunked copy-on-write storage layer in
//! [`graph::cow`]: label and distance tables live in
//! [`graph::CowTable`] / [`graph::CowVec`] containers, so publishing a view
//! copies chunk pointers and a repair stage clones only the chunks its
//! change set touches — with the chunks/bytes actually cloned reported per
//! publication in the [`graph::SnapshotPublisher`] log.

#![warn(missing_docs)]

pub use htsp_baselines as baselines;
pub use htsp_ch as ch;
pub use htsp_core as core;
pub use htsp_graph as graph;
pub use htsp_partition as partition;
pub use htsp_psp as psp;
pub use htsp_search as search;
pub use htsp_td as td;
pub use htsp_throughput as throughput;

// The serving facade, re-exported flat: what a deployment touches first.
pub use htsp_throughput::{
    AdmissionPolicy, AlgorithmKind, BuildParams, CacheConfig, CacheStats, CoalescePolicy,
    DistanceCache, DistanceService, FleetConfig, FleetQueryHandle, FleetReport, FleetRouter,
    FleetSession, FleetTicket, FleetVisibility, LatencyHistogram, LoadProfile, LoadReport, Pacer,
    RoadNetworkServer, ServerBuilder, ServiceStats, ShardReport, ShardedFleet, SloTarget,
    SloVerdict, SubmitOutcome, UpdateFeed, UpdateOutcome, UpdateTicket, Visibility,
    STORAGE_BYTES_METRIC,
};

/// The version of the reproduction.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
