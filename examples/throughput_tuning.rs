//! Throughput tuning: sweep PostMHL's TD-partitioning knobs (`k_e` and the
//! bandwidth `τ`) on one network and report the resulting update time and
//! throughput, mirroring Exp. 7 / Exp. 8 of the paper — then sweep the
//! serving-side knob the paper leaves implicit: the snapshot-versioned
//! result cache under skewed hot-pair traffic.
//!
//! Run with `cargo run --release --example throughput_tuning`.

use htsp::core::{PostMhl, PostMhlConfig};
use htsp::graph::gen;
use htsp::partition::TdPartitionConfig;
use htsp::throughput::{QueryEngine, SystemConfig, ThroughputHarness, WorkloadKind};
use htsp::{
    AlgorithmKind, BuildParams, CacheConfig, CacheStats, CoalescePolicy, FleetConfig,
    RoadNetworkServer, ShardedFleet,
};

fn main() {
    let road = gen::grid_with_diagonals(48, 48, gen::WeightRange::new(1, 100), 0.08, 33);
    let config = SystemConfig {
        update_volume: 200,
        update_interval: 120.0,
        max_response_time: 1.0,
        query_sample: 100,
    };
    let harness = ThroughputHarness::new(config, 5, 2);

    println!("-- sweeping expected partition number k_e (τ = 16) --");
    println!(
        "{:>6} {:>12} {:>12} {:>14}",
        "k_e", "partitions", "t_u (s)", "λ*_q (q/s)"
    );
    for ke in [8usize, 16, 32, 64] {
        let idx = PostMhl::build(
            &road,
            PostMhlConfig {
                partitioning: TdPartitionConfig {
                    bandwidth: 16,
                    expected_partitions: ke,
                    beta_lower: 0.1,
                    beta_upper: 2.0,
                },
                num_threads: 4,
            },
        );
        let parts = idx.num_partitions();
        let server = RoadNetworkServer::host(&road, Box::new(idx));
        let r = harness.run(&server);
        server.shutdown();
        println!(
            "{:>6} {:>12} {:>12.4} {:>14.1}",
            ke,
            parts,
            r.avg_update_time,
            r.throughput()
        );
    }

    println!("-- sweeping bandwidth τ (k_e = 32) --");
    println!(
        "{:>6} {:>14} {:>12} {:>14}",
        "τ", "|V(overlay)|", "t_u (s)", "λ*_q (q/s)"
    );
    for tau in [8usize, 16, 24, 32] {
        let idx = PostMhl::build(
            &road,
            PostMhlConfig {
                partitioning: TdPartitionConfig {
                    bandwidth: tau,
                    expected_partitions: 32,
                    beta_lower: 0.1,
                    beta_upper: 2.0,
                },
                num_threads: 4,
            },
        );
        let overlay = idx.num_overlay_vertices();
        let server = RoadNetworkServer::host(&road, Box::new(idx));
        let r = harness.run(&server);
        server.shutdown();
        println!(
            "{:>6} {:>14} {:>12.4} {:>14.1}",
            tau,
            overlay,
            r.avg_update_time,
            r.throughput()
        );
    }

    // Serving-side tuning: the result cache under Zipf hot-pair traffic.
    // The same DCH machinery is reused across configurations (handed back
    // by shutdown()), so the cache is the only difference per row.
    println!("-- result cache under Zipf hot-pair traffic (DCH, universe 1024) --");
    println!(
        "{:>8} {:>12} {:>14} {:>10}",
        "zipf s", "cache", "pairs/s", "hit rate"
    );
    let mut maintainer = AlgorithmKind::Dch.build(&road, &BuildParams::default());
    let mut current = road.clone();
    for s in [0.0, 1.2] {
        for capacity in [None, Some(256)] {
            let mut builder = RoadNetworkServer::builder()
                .maintainer(maintainer)
                .coalesce(CoalescePolicy::manual());
            if let Some(capacity) = capacity {
                builder = builder.result_cache(CacheConfig::with_capacity(capacity));
            }
            let server = builder.start(&current);
            let engine = QueryEngine::builder()
                .workers(2)
                .batches(2)
                .update_volume(20)
                .query_pool(1024)
                .workload(WorkloadKind::HotPairs {
                    zipf_s: s,
                    universe: 1024,
                })
                .build();
            let report = engine.run(&server);
            current = server.with_graph(|g| g.clone());
            maintainer = server.shutdown();
            println!(
                "{:>8.1} {:>12} {:>14.0} {:>9.1}%",
                s,
                capacity
                    .map(|c| c.to_string())
                    .unwrap_or_else(|| "off".into()),
                report.measured_qps,
                report.cache.map(|c| c.hit_rate() * 100.0).unwrap_or(0.0),
            );
        }
    }

    // Sharded serving tier: the same engine workload against a fleet, with
    // per-shard cache telemetry summed into one fleet-wide figure
    // (`CacheStats` implements `Sum`, so no hand-rolled accumulation).
    println!("-- sharded fleet under Zipf hot-pair traffic (DCH shards, cache 256) --");
    println!(
        "{:>8} {:>12} {:>14} {:>10}",
        "shards", "bdry %", "pairs/s", "hit rate"
    );
    for shards in [2usize, 4] {
        let fleet = ShardedFleet::start(
            &road,
            FleetConfig::new(shards, AlgorithmKind::Dch)
                .with_cache(CacheConfig::with_capacity(256)),
        );
        let engine = QueryEngine::builder()
            .workers(2)
            .batches(2)
            .update_volume(20)
            .query_pool(1024)
            .workload(WorkloadKind::HotPairs {
                zipf_s: 1.2,
                universe: 1024,
            })
            .build();
        let report = engine.run_sharded(&fleet);
        let fleet_report = fleet.report();
        let cache_total: CacheStats = fleet_report.shards.iter().filter_map(|s| s.cache).sum();
        fleet.shutdown();
        println!(
            "{:>8} {:>12.1} {:>14.0} {:>9.1}%",
            shards,
            fleet_report.boundary_fraction * 100.0,
            report.measured_qps,
            cache_total.hit_rate() * 100.0,
        );
    }
}
