//! City navigation scenario: a ring-radial (European-style) city where most
//! queries are local (same district) and a few are cross-city.
//!
//! This exercises the query classes the paper distinguishes: *same-partition*
//! queries, served by the post-boundary index, and *cross-partition* queries,
//! served by the cross-boundary index. All queries go through one immutable
//! snapshot of the index, each workload through one per-thread session; a
//! dispatch-style one-to-many workload (one rider, many candidate drivers)
//! closes the example. Run with
//! `cargo run --release --example city_navigation`.

use htsp::core::{Pmhl, PmhlConfig};
use htsp::graph::{gen, IndexMaintainer, QuerySet, VertexId};

fn main() {
    // A ring-radial city: 40 concentric rings with 64 spokes.
    let road = gen::ring_radial(40, 64, gen::WeightRange::new(1, 30), 11);
    println!(
        "city network: {} intersections, {} segments",
        road.num_vertices(),
        road.num_edges()
    );

    let index = Pmhl::build(
        &road,
        PmhlConfig {
            num_partitions: 8,
            num_threads: 4,
            seed: 3,
        },
    );
    println!(
        "PMHL built: {} boundary vertices, {:.1} MB",
        index.num_boundary(),
        IndexMaintainer::index_size_bytes(&index) as f64 / (1024.0 * 1024.0)
    );

    // Local trips: endpoints close to each other (mostly same partition).
    let local = QuerySet::random_local(&road, 2000, 50, 5);
    // Cross-city trips: uniformly random endpoints.
    let global = QuerySet::random(&road, 2000, 6);

    let view = index.current_view();
    let mut session = view.session();
    for (name, set) in [("local (district)", &local), ("cross-city", &global)] {
        let t = std::time::Instant::now();
        let mut same_partition = 0usize;
        for q in set {
            if index
                .partitioned()
                .partition
                .same_partition(q.source, q.target)
            {
                same_partition += 1;
            }
            let _ = session.query(q);
        }
        println!(
            "{name:<18}: {} queries, {:.1} µs/query, {:.0}% same-partition",
            set.len(),
            t.elapsed().as_secs_f64() * 1e6 / set.len() as f64,
            100.0 * same_partition as f64 / set.len() as f64
        );
    }

    // Dispatch: one rider, 256 candidate drivers — a single one-to-many
    // batch instead of 256 independent queries.
    let rider = VertexId(road.num_vertices() as u32 / 2);
    let drivers: Vec<VertexId> = global.iter().take(256).map(|q| q.target).collect();
    let t = std::time::Instant::now();
    let dists = session.one_to_many(rider, &drivers);
    let (best, d) = drivers
        .iter()
        .zip(&dists)
        .min_by_key(|(_, &d)| d)
        .expect("at least one driver");
    println!(
        "dispatch          : nearest of {} drivers to {} is {} (distance {}), {:.1} µs/pair",
        drivers.len(),
        rider,
        best,
        d,
        t.elapsed().as_secs_f64() * 1e6 / drivers.len() as f64
    );
}
