//! City navigation scenario: a ring-radial (European-style) city where most
//! queries are local (same district) and a few are cross-city.
//!
//! This exercises the query classes the paper distinguishes: *same-partition*
//! queries, served by the post-boundary index, and *cross-partition* queries,
//! served by the cross-boundary index. All queries go through one immutable
//! snapshot of the index. Run with
//! `cargo run --release --example city_navigation`.

use htsp::core::{Pmhl, PmhlConfig};
use htsp::graph::{gen, IndexMaintainer, QuerySet};

fn main() {
    // A ring-radial city: 40 concentric rings with 64 spokes.
    let road = gen::ring_radial(40, 64, gen::WeightRange::new(1, 30), 11);
    println!(
        "city network: {} intersections, {} segments",
        road.num_vertices(),
        road.num_edges()
    );

    let index = Pmhl::build(
        &road,
        PmhlConfig {
            num_partitions: 8,
            num_threads: 4,
            seed: 3,
        },
    );
    println!(
        "PMHL built: {} boundary vertices, {:.1} MB",
        index.num_boundary(),
        IndexMaintainer::index_size_bytes(&index) as f64 / (1024.0 * 1024.0)
    );

    // Local trips: endpoints close to each other (mostly same partition).
    let local = QuerySet::random_local(&road, 2000, 50, 5);
    // Cross-city trips: uniformly random endpoints.
    let global = QuerySet::random(&road, 2000, 6);

    let view = index.current_view();
    for (name, set) in [("local (district)", &local), ("cross-city", &global)] {
        let t = std::time::Instant::now();
        let mut same_partition = 0usize;
        for q in set {
            if index
                .partitioned()
                .partition
                .same_partition(q.source, q.target)
            {
                same_partition += 1;
            }
            let _ = view.distance(q.source, q.target);
        }
        println!(
            "{name:<18}: {} queries, {:.1} µs/query, {:.0}% same-partition",
            set.len(),
            t.elapsed().as_secs_f64() * 1e6 / set.len() as f64,
            100.0 * same_partition as f64 / set.len() as f64
        );
    }
}
