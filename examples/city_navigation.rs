//! City navigation scenario on the `RoadNetworkServer` facade: a ring-radial
//! (European-style) city where most queries are local (same district) and a
//! few are cross-city, served by a PMHL server while rush-hour traffic
//! updates stream in concurrently.
//!
//! This exercises the query classes the paper distinguishes —
//! *same-partition* queries (post-boundary index) vs *cross-partition*
//! queries (cross-boundary index) — through the server's batched
//! `DistanceService` front-end, a dispatch-style one-to-many workload (one
//! rider, many candidate drivers), and then a rush-hour phase: edge
//! slowdowns are submitted through the `UpdateFeed` while dispatch queries
//! keep flowing, and each update ticket prints its submit-to-visible lag.
//! Run with `cargo run --release --example city_navigation`.

use htsp::core::{Pmhl, PmhlConfig};
use htsp::graph::{gen, EdgeId, EdgeUpdate, IndexMaintainer, QuerySet, VertexId};
use htsp::throughput::QueryBatch;
use htsp::{CoalescePolicy, RoadNetworkServer};
use std::time::Duration;

fn main() {
    // A ring-radial city: 40 concentric rings with 64 spokes.
    let road = gen::ring_radial(40, 64, gen::WeightRange::new(1, 30), 11);
    println!(
        "city network: {} intersections, {} segments",
        road.num_vertices(),
        road.num_edges()
    );

    let index = Pmhl::build(
        &road,
        PmhlConfig {
            num_partitions: 8,
            num_threads: 4,
            seed: 3,
        },
    );
    println!(
        "PMHL built: {} boundary vertices, {:.1} MB",
        index.num_boundary(),
        IndexMaintainer::index_size_bytes(&index) as f64 / (1024.0 * 1024.0)
    );
    // Keep the partition map for workload classification, then hand the
    // index machinery to the server.
    let partition = index.partitioned().partition.clone();
    let server = RoadNetworkServer::builder()
        .maintainer(Box::new(index))
        .coalesce(CoalescePolicy::new(32, Duration::from_millis(20)))
        .query_workers(3)
        .start(&road);

    // Local trips: endpoints close to each other (mostly same partition).
    let local = QuerySet::random_local(&road, 2000, 50, 5);
    // Cross-city trips: uniformly random endpoints.
    let global = QuerySet::random(&road, 2000, 6);

    for (name, set) in [("local (district)", &local), ("cross-city", &global)] {
        let same_partition = set
            .iter()
            .filter(|q| partition.same_partition(q.source, q.target))
            .count();
        let t = std::time::Instant::now();
        let answer = server
            .submit_queries(QueryBatch::PointToPoint(set.as_slice().to_vec()))
            .wait();
        println!(
            "{name:<18}: {} queries, {:.1} µs/query (batched, snapshot v{}), {:.0}% same-partition",
            set.len(),
            t.elapsed().as_secs_f64() * 1e6 / set.len() as f64,
            answer.snapshot_version,
            100.0 * same_partition as f64 / set.len() as f64
        );
    }

    // Dispatch: one rider, 256 candidate drivers — a single one-to-many
    // batch instead of 256 independent queries.
    let rider = VertexId(road.num_vertices() as u32 / 2);
    let drivers: Vec<VertexId> = global.iter().take(256).map(|q| q.target).collect();
    let t = std::time::Instant::now();
    let fan = server
        .submit_queries(QueryBatch::OneToMany {
            source: rider,
            targets: drivers.clone(),
        })
        .wait();
    let (best, d) = drivers
        .iter()
        .zip(&fan.distances)
        .min_by_key(|(_, &d)| d)
        .expect("at least one driver");
    println!(
        "dispatch          : nearest of {} drivers to {} is {} (distance {}), {:.1} µs/pair",
        drivers.len(),
        rider,
        best,
        d,
        t.elapsed().as_secs_f64() * 1e6 / drivers.len() as f64
    );

    // Rush hour: segment slowdowns stream in while dispatch keeps running.
    // Updates and queries are concurrent; the tickets' wait_visible() shows
    // how long a reported slowdown takes to reach the answers.
    println!("rush hour         : 48 segment slowdowns streaming in (Δt = 20 ms)...");
    let mut update_tickets = Vec::new();
    let mut inflight = Vec::new();
    for i in 0..48usize {
        let slowdown = server.with_graph(|g| {
            let e = EdgeId::from_index((i * 211) % g.num_edges());
            let w = g.edge_weight(e);
            EdgeUpdate::new(e, w, w * 2)
        });
        update_tickets.push(server.submit(slowdown));
        inflight.push(server.submit_queries(QueryBatch::OneToMany {
            source: rider,
            targets: drivers.clone(),
        }));
        std::thread::sleep(Duration::from_millis(1));
    }
    let mut lags_ms: Vec<f64> = update_tickets
        .iter()
        .map(|t| t.wait_visible().latency.as_secs_f64() * 1e3)
        .collect();
    lags_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    for t in inflight {
        let _ = t.wait();
    }
    // Let the last batch finish its staged repair so the summary counts
    // every slowdown (visibility already happened above, at stage 1).
    update_tickets.last().expect("tickets").wait_applied();
    let stats = server.feed().stats();
    println!(
        "rush hour         : {} updates in {} coalesced batches; visibility lag median {:.1} ms / p90 {:.1} ms",
        stats.updates_applied,
        stats.batches_applied,
        lags_ms[lags_ms.len() / 2],
        lags_ms[(lags_ms.len() * 9) / 10]
    );

    // Post-rush dispatch answers on the updated city.
    let after = server
        .submit_queries(QueryBatch::OneToMany {
            source: rider,
            targets: drivers.clone(),
        })
        .wait();
    let (best_after, d_after) = drivers
        .iter()
        .zip(&after.distances)
        .min_by_key(|(_, &d)| d)
        .expect("at least one driver");
    println!(
        "post-rush dispatch: nearest driver now {best_after} (distance {d_after}), snapshot v{}",
        after.snapshot_version
    );
    server.shutdown();
}
