//! Quickstart: build a road network, index it with PostMHL, answer queries
//! through an immutable snapshot, apply a traffic update batch, and watch the
//! staged snapshots get published while the repair runs.
//!
//! Run with `cargo run --release --example quickstart`.

use htsp::core::{PostMhl, PostMhlConfig};
use htsp::graph::{gen, IndexMaintainer, QuerySet, SnapshotPublisher, UpdateGenerator};
use htsp::search::dijkstra_distance;

fn main() {
    // 1. A synthetic city: a 64x64 grid with perturbed travel times.
    let mut road = gen::grid_with_diagonals(64, 64, gen::WeightRange::new(1, 100), 0.1, 42);
    println!(
        "road network: {} intersections, {} segments",
        road.num_vertices(),
        road.num_edges()
    );

    // 2. Build the PostMHL index (the paper's best-performing method).
    let t = std::time::Instant::now();
    let mut index = PostMhl::build(&road, PostMhlConfig::default());
    println!(
        "PostMHL built in {:.2?} ({} partitions, {} overlay vertices, {:.1} MB)",
        t.elapsed(),
        index.num_partitions(),
        index.num_overlay_vertices(),
        IndexMaintainer::index_size_bytes(&index) as f64 / (1024.0 * 1024.0)
    );

    // 3. Take an immutable snapshot and answer shortest-distance queries
    //    (any number of threads could share this view; see the
    //    `traffic_updates` example for the concurrent engine).
    let view = index.current_view();
    let queries = QuerySet::random(&road, 1000, 7);
    let t = std::time::Instant::now();
    for q in &queries {
        let d = view.distance(q.source, q.target);
        debug_assert_eq!(d, dijkstra_distance(&road, q.source, q.target));
    }
    println!(
        "answered {} queries in {:.2?} ({:.1} µs/query)",
        queries.len(),
        t.elapsed(),
        t.elapsed().as_secs_f64() * 1e6 / queries.len() as f64
    );

    // 4. A batch of traffic updates arrives: apply it and repair the index.
    //    The publisher receives a fresh snapshot at the end of each completed
    //    update stage (Figure 1's staged availability).
    let batch = UpdateGenerator::new(1).generate(&road, 500);
    road.apply_batch(&batch);
    let publisher = SnapshotPublisher::new(index.current_view());
    let timeline = index.apply_batch(&road, &batch, &publisher);
    println!("update batch of {} edges repaired:", batch.len());
    for stage in &timeline.stages {
        println!("  {:<35} {:?}", stage.name, stage.duration);
    }
    for event in publisher.take_log() {
        println!("  snapshot published for query stage {}", event.stage);
    }

    // 5. Queries remain exact at every stage of the repair.
    let q = &queries.as_slice()[0];
    for stage in 0..index.num_query_stages() {
        let d = index.view_at_stage(stage).distance(q.source, q.target);
        println!("stage {stage}: d({}, {}) = {}", q.source, q.target, d);
    }
}
