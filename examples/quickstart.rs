//! Quickstart: build a road network, index it with PostMHL, answer queries
//! through an immutable snapshot, apply a traffic update batch, and watch the
//! staged snapshots get published while the repair runs.
//!
//! Run with `cargo run --release --example quickstart`.

use htsp::core::{PostMhl, PostMhlConfig};
use htsp::graph::{gen, IndexMaintainer, QuerySet, SnapshotPublisher, UpdateGenerator};
use htsp::search::dijkstra_distance;

fn main() {
    // 1. A synthetic city: a 64x64 grid with perturbed travel times.
    let mut road = gen::grid_with_diagonals(64, 64, gen::WeightRange::new(1, 100), 0.1, 42);
    println!(
        "road network: {} intersections, {} segments",
        road.num_vertices(),
        road.num_edges()
    );

    // 2. Build the PostMHL index (the paper's best-performing method).
    let t = std::time::Instant::now();
    let mut index = PostMhl::build(&road, PostMhlConfig::default());
    println!(
        "PostMHL built in {:.2?} ({} partitions, {} overlay vertices, {:.1} MB)",
        t.elapsed(),
        index.num_partitions(),
        index.num_overlay_vertices(),
        IndexMaintainer::index_size_bytes(&index) as f64 / (1024.0 * 1024.0)
    );

    // 3. Take an immutable snapshot, open a per-thread query session on it,
    //    and answer shortest-distance queries (any number of threads could
    //    share this view, each with its own session; see the
    //    `traffic_updates` example for the concurrent engine).
    let view = index.current_view();
    let mut session = view.session();
    let queries = QuerySet::random(&road, 1000, 7);
    let t = std::time::Instant::now();
    for q in &queries {
        let d = session.query(q);
        debug_assert_eq!(d, dijkstra_distance(&road, q.source, q.target));
    }
    println!(
        "answered {} queries in {:.2?} ({:.1} µs/query)",
        queries.len(),
        t.elapsed(),
        t.elapsed().as_secs_f64() * 1e6 / queries.len() as f64
    );

    // 3b. Batch workloads on the same session: one origin against many
    //     candidate destinations, and a small distance matrix.
    let origin = queries.as_slice()[0].source;
    let destinations: Vec<_> = queries.as_slice()[..64].iter().map(|q| q.target).collect();
    let t = std::time::Instant::now();
    let fan = session.one_to_many(origin, &destinations);
    println!(
        "one-to-many: {} destinations from {} in {:.2?} (nearest at distance {})",
        destinations.len(),
        origin,
        t.elapsed(),
        fan.iter().min().unwrap()
    );
    let depots: Vec<_> = queries.as_slice()[..8].iter().map(|q| q.source).collect();
    let matrix = session.matrix(&depots, &destinations[..8]);
    println!(
        "matrix: {}x{} pairs, corner d({}, {}) = {}",
        matrix.len(),
        matrix[0].len(),
        depots[0],
        destinations[0],
        matrix[0][0]
    );
    drop(session);

    // 4. A batch of traffic updates arrives: apply it and repair the index.
    //    The publisher receives a fresh snapshot at the end of each completed
    //    update stage (Figure 1's staged availability).
    let batch = UpdateGenerator::new(1).generate(&road, 500);
    road.apply_batch(&batch);
    let publisher = SnapshotPublisher::new(index.current_view());
    let timeline = index.apply_batch(&road, &batch, &publisher);
    println!("update batch of {} edges repaired:", batch.len());
    for stage in &timeline.stages {
        println!("  {:<35} {:?}", stage.name, stage.duration);
    }
    for event in publisher.take_log() {
        println!("  snapshot published for query stage {}", event.stage);
    }

    // 5. Queries remain exact at every stage of the repair.
    let q = &queries.as_slice()[0];
    for stage in 0..index.num_query_stages() {
        let d = index.view_at_stage(stage).distance(q.source, q.target);
        println!("stage {stage}: d({}, {}) = {}", q.source, q.target, d);
    }
}
