//! Observability: one `TelemetryHub` over the whole serving pipeline.
//!
//! Builds a DCH server (with a result cache) and a 4-shard fleet that share
//! a single telemetry hub, pushes traced updates and an open-loop query run
//! through them, then exports the two wire formats the hub speaks:
//!
//! * **Prometheus text exposition** — every counter, gauge (with its
//!   high-water `_max` twin), and latency histogram in the registry, ready
//!   to be scraped or diffed;
//! * **Chrome trace-event JSON** — the bounded span ring, where every
//!   update's `submit → coalesce → stage → publish → visible` intervals and
//!   every query batch's `submit → queue → execute` intervals carry the
//!   same trace id end to end. Load the file at `chrome://tracing` (or
//!   <https://ui.perfetto.dev>) and zoom into one trace id to see where a
//!   single request spent its time.
//!
//! The example validates both exports with the hub's own validators and
//! exits nonzero on any malformed line, unparsable JSON, or unbalanced
//! span counts — CI runs it as the telemetry format gate.
//!
//! Run with: `cargo run --release --example observability`

use htsp::graph::{gen, Query, QuerySet, UpdateGenerator};
use htsp::throughput::{
    loadgen, validate_json, validate_prometheus, AdmissionPolicy, AlgorithmKind, CacheConfig,
    DistanceService, FleetConfig, LoadProfile, RequestMix, ShardedFleet, SloTarget, TelemetryHub,
};
use htsp::ServerBuilder;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let road = gen::grid(16, 16, gen::WeightRange::new(1, 60), 7);
    let pool: Vec<Query> = QuerySet::random(&road, 128, 11).as_slice().to_vec();

    // One hub for every component: the server's ingest/stage/publish/cache
    // metrics, the service's admission metrics, the fleet's router metrics,
    // and the load generator's per-class histograms all land in the same
    // registry, so the snapshot below covers the full pipeline.
    let hub = Arc::new(TelemetryHub::new());
    let server = ServerBuilder::default()
        .algorithm(AlgorithmKind::Dch)
        .result_cache(CacheConfig::with_capacity(1024))
        .telemetry(Arc::clone(&hub))
        .start(&road);
    let fleet = ShardedFleet::start_with_telemetry(
        &road,
        FleetConfig::new(4, AlgorithmKind::Dch),
        Arc::clone(&hub),
    );

    // Traced updates: each submission mints a trace id that follows the
    // update through coalescing, every maintenance stage, and publication.
    let mut gen_updates = UpdateGenerator::new(3);
    for _ in 0..4 {
        let batch = {
            let graph = server.snapshot().graph().clone();
            gen_updates.generate(&graph, 4)
        };
        for &u in batch.as_slice() {
            server.submit(u);
            fleet.submit(u);
        }
        server.feed().wait_idle();
        fleet.wait_idle();
    }
    // A few fleet queries so the router's local/cross counters move.
    for q in pool.iter().take(16) {
        fleet.distance(q.source, q.target);
    }

    // Traced queries: an open-loop run against a shedding service; every
    // batch gets a trace id spanning submit → queue → execute, and the
    // tight queue bound exercises the shed path too.
    let service = DistanceService::with_telemetry(
        Arc::clone(server.publisher()),
        2,
        server.cache().cloned(),
        AdmissionPolicy::Shed { max_depth: 8 },
        Arc::clone(&hub),
    );
    let profile = LoadProfile::poisson(
        400.0,
        Duration::from_millis(200),
        SloTarget::p95(Duration::from_millis(100)),
    )
    .with_mix(RequestMix::point_to_point(4));
    let report = loadgen::run_open_loop_with_telemetry(&service, &profile, &pool, Some(&hub));
    println!(
        "open loop: {} offered, {} answered, {} shed, p95 {:.2} ms",
        report.offered,
        report.answered,
        report.shed,
        report.latency.quantile(0.95).as_secs_f64() * 1e3,
    );
    service.shutdown();
    fleet.shutdown();
    server.shutdown();

    // One snapshot, two wire formats.
    let snap = hub.snapshot();
    let dir = std::env::temp_dir();
    let prom_path = dir.join("htsp_observability.prom");
    let trace_path = dir.join("htsp_observability_trace.json");
    std::fs::write(&prom_path, &snap.prometheus).expect("write Prometheus dump");
    std::fs::write(&trace_path, &snap.chrome_trace).expect("write Chrome trace dump");
    println!(
        "exported {} bytes of Prometheus exposition to {}",
        snap.prometheus.len(),
        prom_path.display()
    );
    println!(
        "exported {} bytes of Chrome trace JSON to {} (open at chrome://tracing)",
        snap.chrome_trace.len(),
        trace_path.display()
    );
    let mut failed = false;
    match validate_prometheus(&snap.prometheus) {
        Ok(samples) => println!("Prometheus exposition valid: {samples} samples"),
        Err(e) => {
            eprintln!("INVALID Prometheus exposition: {e}");
            failed = true;
        }
    }
    match validate_json(&snap.chrome_trace) {
        Ok(()) => println!("Chrome trace JSON parses"),
        Err(e) => {
            eprintln!("INVALID Chrome trace JSON: {e}");
            failed = true;
        }
    }
    if snap.spans_balanced() {
        println!(
            "spans balanced: {} opened = {} closed ({} dropped by the bounded ring)",
            snap.spans_opened, snap.spans_closed, snap.spans_dropped
        );
    } else {
        eprintln!(
            "UNBALANCED spans: {} opened vs {} closed",
            snap.spans_opened, snap.spans_closed
        );
        failed = true;
    }
    // A taste of the exposition: the first few metric families.
    for line in snap.prometheus.lines().take(12) {
        println!("  {line}");
    }
    if failed {
        std::process::exit(1);
    }
}
