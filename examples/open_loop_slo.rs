//! Open-loop load & SLOs: measure a serving tier the way real traffic
//! arrives.
//!
//! Builds a DCH server over a synthetic grid, then offers the same Poisson
//! request stream at two rates — comfortably below saturation and well
//! above it — under the two admission policies, and prints the latency
//! tails side by side. The point the numbers make: a closed-loop benchmark
//! can never show this cliff (it self-throttles), and above saturation the
//! unbounded Block queue grows without limit while Shed keeps the tail flat
//! by rejecting the excess explicitly.
//!
//! Run with: `cargo run --release --example open_loop_slo`

use htsp::graph::{gen, Query, QuerySet};
use htsp::throughput::{
    loadgen, AdmissionPolicy, AlgorithmKind, ArrivalProcess, DistanceService, LoadProfile,
    OpenLoopStream, RequestClass, RequestMix, SloTarget,
};
use htsp::{RoadNetworkServer, ServerBuilder};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn mix() -> RequestMix {
    RequestMix::new(vec![
        (RequestClass::PointToPoint { bundle: 512 }, 3.0),
        (RequestClass::OneToMany { fanout: 512 }, 1.0),
        (RequestClass::Matrix { side: 24 }, 1.0),
        (
            RequestClass::HotPairs {
                universe: 32,
                zipf_s: 1.1,
            },
            1.0,
        ),
    ])
}

fn run(
    server: &RoadNetworkServer,
    pool: &[Query],
    rate: f64,
    policy: AdmissionPolicy,
) -> loadgen::LoadReport {
    // Fresh service per run: the admission policy is fixed at start and
    // max_queue_depth is a lifetime maximum.
    let service = DistanceService::with_policy(Arc::clone(server.publisher()), 2, None, policy);
    let profile = LoadProfile::poisson(
        rate,
        Duration::from_millis(400),
        SloTarget::p95(Duration::from_millis(50)),
    )
    .with_mix(mix());
    let report = loadgen::run_open_loop(&service, &profile, pool);
    service.shutdown();
    report
}

fn main() {
    let road = gen::grid(24, 24, gen::WeightRange::new(1, 60), 7);
    let server = ServerBuilder::default()
        .algorithm(AlgorithmKind::Dch)
        .start(&road);
    let pool: Vec<Query> = QuerySet::random(&road, 128, 11).as_slice().to_vec();

    // Closed-loop calibration: answer the mix synchronously for ~200 ms to
    // estimate the service rate, then offer half and triple it open-loop.
    let service = DistanceService::start(Arc::clone(server.publisher()), 2);
    let mut stream =
        OpenLoopStream::new(ArrivalProcess::Constant { rate: 1.0 }, mix(), &pool, 7, 0);
    let t = Instant::now();
    let mut n = 0u32;
    while t.elapsed() < Duration::from_millis(200) {
        service.answer(stream.next_request().batch);
        n += 1;
    }
    service.shutdown();
    let capacity = 2.0 * n as f64 / t.elapsed().as_secs_f64();
    println!("closed-loop capacity ~{capacity:.0} requests/s");
    let below = capacity * 0.5;
    let above = capacity * 3.0;

    println!("open-loop Poisson arrivals, p95 SLO = 50 ms, 2 workers\n");
    println!(
        "{:<26} {:>10} {:>10} {:>10} {:>8} {:>8}  SLO",
        "run", "offered/s", "p95 ms", "p99 ms", "shed", "queue"
    );
    for (label, rate, policy) in [
        ("below knee, Block", below, AdmissionPolicy::Block),
        (
            "below knee, Shed(16)",
            below,
            AdmissionPolicy::Shed { max_depth: 16 },
        ),
        ("above knee, Block", above, AdmissionPolicy::Block),
        (
            "above knee, Shed(16)",
            above,
            AdmissionPolicy::Shed { max_depth: 16 },
        ),
        (
            "above knee, Deadline(50ms)",
            above,
            AdmissionPolicy::Deadline {
                budget: Duration::from_millis(50),
            },
        ),
    ] {
        let r = run(&server, &pool, rate, policy);
        println!(
            "{label:<26} {rate:>10.0} {:>10.2} {:>10.2} {:>8} {:>8}  {}",
            r.latency.quantile(0.95).as_secs_f64() * 1e3,
            r.latency.quantile(0.99).as_secs_f64() * 1e3,
            r.shed + r.expired,
            r.max_queue_depth,
            if r.verdict.passed { "pass" } else { "FAIL" },
        );
    }
    println!(
        "\nAbove the knee the Block queue absorbs everything and the tail diverges;\n\
         Shed bounds the queue (tail stays near the SLO, excess is rejected at\n\
         submit), and Deadline drops stale work before wasting a worker on it."
    );
    server.shutdown();
}
