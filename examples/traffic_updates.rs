//! Traffic-update scenario on the `RoadNetworkServer` facade: a stream of
//! edge-weight updates is *submitted* to a running server while queries keep
//! arriving (the Figure 1 situation, driven through the public ingest API).
//!
//! Three phases:
//!
//! 1. **Modeled** — the Lemma 1 harness drives DCH (fast repair, slow
//!    queries), DH2H (fast queries, slow repair) and PostMHL (multi-stage)
//!    through hosted servers and reports the modeled throughput bound.
//! 2. **Measured** — the concurrent `QueryEngine` races real query workers
//!    against the servers' published snapshots under several workload
//!    shapes.
//! 3. **Live ingest** — updates stream into the server's `UpdateFeed` under
//!    a delay-based `CoalescePolicy` while a `DistanceService` answers
//!    query batches; every update ticket reports its submit-to-visible
//!    latency (read-your-writes lag).
//!
//! Run with `cargo run --release --example traffic_updates`.

use htsp::graph::{gen, EdgeId, EdgeUpdate, Query, VertexId};
use htsp::throughput::{QueryBatch, QueryEngine, SystemConfig, ThroughputHarness, WorkloadKind};
use htsp::{AlgorithmKind, CoalescePolicy, RoadNetworkServer};
use std::time::Duration;

const KINDS: [AlgorithmKind; 3] = [
    AlgorithmKind::Dch,
    AlgorithmKind::Dh2h,
    AlgorithmKind::PostMhl,
];

fn main() {
    let road = gen::grid_with_diagonals(48, 48, gen::WeightRange::new(1, 100), 0.1, 21);
    println!(
        "network: {} vertices / {} edges; replaying 3 update batches of 300 edges",
        road.num_vertices(),
        road.num_edges()
    );

    let config = SystemConfig {
        update_volume: 300,
        update_interval: 120.0,
        max_response_time: 1.0,
        query_sample: 200,
    };
    let harness = ThroughputHarness::new(config, 9, 3);

    println!("\n-- modeled (Lemma 1 + staged availability) --");
    for kind in KINDS {
        let server = RoadNetworkServer::builder()
            .algorithm(kind)
            .coalesce(CoalescePolicy::manual())
            .start(&road);
        let result = harness.run(&server);
        server.shutdown();
        println!(
            "{:<10} t_u = {:>8.4} s | t_q = {:>8.2} µs | λ*_q ≈ {:>10.1} queries/s",
            result.algorithm,
            result.avg_update_time,
            result.avg_query_time * 1e6,
            result.throughput()
        );
        // Show the QPS staircase of the first batch (Fig. 13).
        let batch = &result.batches[0];
        let stairs: Vec<String> = batch
            .qps_evolution
            .iter()
            .map(|p| format!("{:.4}s→{:.0}qps", p.elapsed, p.qps))
            .collect();
        println!("            QPS evolution: {}", stairs.join("  "));
    }

    // Measured: four query workers hammer the published snapshots while the
    // server's maintenance thread coalesces and repairs the submitted
    // batches. Workers are never blocked; each answer is exact on the
    // snapshot's own graph version.
    for workload in [
        WorkloadKind::SingleCall,
        WorkloadKind::Batched { batch_size: 64 },
        WorkloadKind::Matrix { side: 8 },
    ] {
        println!(
            "\n-- measured, {} (4 query workers racing the maintenance thread) --",
            workload.label()
        );
        let engine = QueryEngine::builder()
            .workers(4)
            .batches(3)
            .update_volume(300)
            .pause_between_batches(Duration::from_millis(100))
            .workload(workload)
            .seed(9)
            .build();
        for kind in KINDS {
            let server = RoadNetworkServer::builder()
                .algorithm(kind)
                .coalesce(CoalescePolicy::manual())
                .start(&road);
            let report = engine.run(&server);
            server.shutdown();
            println!(
                "{:<10} {:>9} pairs in {:>6.3} s = {:>10.0} pairs/s measured | stages hit: {:?}",
                report.algorithm,
                report.total_queries,
                report.wall_time,
                report.measured_qps,
                report.per_stage_queries,
            );
            let pubs: Vec<String> = report
                .publications
                .iter()
                .map(|(t, s)| format!("{t:.3}s→stage {s}"))
                .collect();
            println!("            snapshots: {}", pubs.join("  "));
        }
    }

    // Live ingest: the deployment shape. Updates stream in one by one and
    // are coalesced by the Δt policy; a DistanceService answers query
    // batches concurrently; tickets report the submit-to-visible lag.
    println!("\n-- live ingest (PostMHL server, Δt = 50 ms coalescing, 2 query workers) --");
    let server = RoadNetworkServer::builder()
        .algorithm(AlgorithmKind::PostMhl)
        .coalesce(CoalescePolicy::new(64, Duration::from_millis(50)))
        .query_workers(2)
        .start(&road);

    let n = road.num_vertices() as u32;
    let mut query_tickets = Vec::new();
    let mut update_tickets = Vec::new();
    for i in 0..40u32 {
        // A query batch and an update submission, interleaved — neither
        // waits for the other.
        query_tickets.push(
            server.submit_queries(QueryBatch::PointToPoint(vec![Query::new(
                VertexId((i * 97) % n),
                VertexId((i * 53 + 11) % n),
            )])),
        );
        let update = server.with_graph(|g| {
            let e = EdgeId::from_index((i as usize * 131) % g.num_edges());
            let w = g.edge_weight(e);
            EdgeUpdate::new(e, w, w + 5)
        });
        update_tickets.push(server.submit(update));
        std::thread::sleep(Duration::from_millis(2));
    }
    let mut lags: Vec<f64> = update_tickets
        .iter()
        .map(|t| t.wait_visible().latency.as_secs_f64() * 1e3)
        .collect();
    let answered = query_tickets
        .into_iter()
        .map(|t| t.wait())
        .filter(|a| !a.distances.is_empty())
        .count();
    lags.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let stats = server.feed().stats();
    println!(
        "{} updates coalesced into {} batches while {} query batches were answered",
        stats.updates_applied, stats.batches_applied, answered
    );
    println!(
        "submit-to-visible lag: min {:.1} ms | median {:.1} ms | max {:.1} ms",
        lags.first().expect("lags"),
        lags[lags.len() / 2],
        lags.last().expect("lags")
    );
    server.shutdown();
}
