//! Traffic-update scenario: a stream of update batches hits the index every
//! interval while queries keep arriving (the Figure 1 situation). The example
//! compares how DH2H (fast queries, slow repair), DCH (fast repair, slow
//! queries) and PostMHL (multi-stage) spend the same maintenance window —
//! first with the Lemma 1 *model*, then with the concurrent `QueryEngine`
//! actually *measuring* QPS while maintenance races the query workers.
//!
//! Run with `cargo run --release --example traffic_updates`.

use htsp::baselines::{DchBaseline, Dh2hBaseline};
use htsp::core::{PostMhl, PostMhlConfig};
use htsp::graph::gen;
use htsp::throughput::{QueryEngine, SystemConfig, ThroughputHarness, WorkloadKind};
use std::time::Duration;

fn main() {
    let road = gen::grid_with_diagonals(48, 48, gen::WeightRange::new(1, 100), 0.1, 21);
    println!(
        "network: {} vertices / {} edges; replaying 3 update batches of 300 edges",
        road.num_vertices(),
        road.num_edges()
    );

    let config = SystemConfig {
        update_volume: 300,
        update_interval: 120.0,
        max_response_time: 1.0,
        query_sample: 200,
    };
    let harness = ThroughputHarness::new(config, 9, 3);

    let mut dch = DchBaseline::build(&road);
    let mut dh2h = Dh2hBaseline::build(&road);
    let mut postmhl = PostMhl::build(&road, PostMhlConfig::default());

    println!("\n-- modeled (Lemma 1 + staged availability) --");
    for result in [
        harness.run(&road, &mut dch),
        harness.run(&road, &mut dh2h),
        harness.run(&road, &mut postmhl),
    ] {
        println!(
            "{:<10} t_u = {:>8.4} s | t_q = {:>8.2} µs | λ*_q ≈ {:>10.1} queries/s",
            result.algorithm,
            result.avg_update_time,
            result.avg_query_time * 1e6,
            result.throughput()
        );
        // Show the QPS staircase of the first batch (Fig. 13).
        let batch = &result.batches[0];
        let stairs: Vec<String> = batch
            .qps_evolution
            .iter()
            .map(|p| format!("{:.4}s→{:.0}qps", p.elapsed, p.qps))
            .collect();
        println!("            QPS evolution: {}", stairs.join("  "));
    }

    // Measured: four query workers hammer the published snapshots while the
    // maintenance thread replays batches. Workers are never blocked; each
    // answer is exact on the snapshot's own graph version. The single-call
    // mode takes a snapshot + scratch per query; the batched mode pins one
    // session per published snapshot and drains bundles through it.
    for workload in [
        WorkloadKind::SingleCall,
        WorkloadKind::Batched { batch_size: 64 },
        WorkloadKind::Matrix { side: 8 },
    ] {
        println!(
            "\n-- measured, {} (4 query workers racing the maintenance thread) --",
            workload.label()
        );
        let engine = QueryEngine::builder()
            .workers(4)
            .batches(3)
            .update_volume(300)
            .pause_between_batches(Duration::from_millis(100))
            .workload(workload)
            .seed(9)
            .build();
        let mut dch = DchBaseline::build(&road);
        let mut dh2h = Dh2hBaseline::build(&road);
        let mut postmhl = PostMhl::build(&road, PostMhlConfig::default());
        for report in [
            engine.run(&road, &mut dch),
            engine.run(&road, &mut dh2h),
            engine.run(&road, &mut postmhl),
        ] {
            println!(
                "{:<10} {:>9} pairs in {:>6.3} s = {:>10.0} pairs/s measured | stages hit: {:?}",
                report.algorithm,
                report.total_queries,
                report.wall_time,
                report.measured_qps,
                report.per_stage_queries,
            );
            let pubs: Vec<String> = report
                .publications
                .iter()
                .map(|(t, s)| format!("{t:.3}s→stage {s}"))
                .collect();
            println!("            snapshots: {}", pubs.join("  "));
        }
    }
}
