//! Offline stand-in for the `rustc-hash` crate (the container image has no
//! crates.io access, so the workspace vendors the tiny subset it uses).
//!
//! Provides [`FxHashMap`] / [`FxHashSet`]: `std` collections parameterized
//! with the Fx hasher — the fast multiply-based hash used by rustc. The
//! algorithm matches the upstream crate; only incidental API (e.g.
//! `FxHasher::write_*` specializations beyond what the workspace needs) is
//! trimmed.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// `BuildHasherDefault` over [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The Fx multiply-rotate hasher.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "a");
        m.insert(2, "b");
        assert_eq!(m.get(&1), Some(&"a"));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }

    #[test]
    fn hashing_is_deterministic() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(42);
        b.write_u64(42);
        assert_eq!(a.finish(), b.finish());
    }
}
