//! Offline stand-in for the `rand` crate (the container image has no
//! crates.io access, so the workspace vendors the small API subset it uses):
//! [`RngCore`], [`Rng`] (`gen_range` / `gen_bool` / `gen`), [`SeedableRng`],
//! and [`seq::SliceRandom`] (`shuffle` / `choose`).
//!
//! Sampling follows the usual widening-multiply uniform-int scheme and a
//! 53-bit mantissa float scheme; streams are deterministic per seed but are
//! not bit-compatible with upstream `rand`.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a 64-bit output stream.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable random generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Uniform sampling from a range, used by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

#[inline]
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0, "empty sample range");
    // Widening multiply: maps the 64-bit stream onto [0, n) with negligible
    // bias for the range sizes used here.
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 random mantissa bits in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full-width inclusive range of a 64-bit type.
                    return rng.next_u64() as $t;
                }
                lo + uniform_u64(rng, span) as $t
            }
        }
    )*};
}

impl_int_ranges!(u32, u64, usize, i64);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (self.end - self.start) * unit_f64(rng)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + (hi - lo) * unit_f64(rng)
    }
}

/// Types that can be drawn uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn gen<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn gen<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for u64 {
    #[inline]
    fn gen<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn gen<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    #[inline]
    fn gen<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli trial with success probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0, 1]");
        unit_f64(self) < p
    }

    /// Uniform sample of a [`Standard`] type.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::gen(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related helpers (`rand::seq`).
pub mod seq {
    use super::{uniform_u64, RngCore};

    /// Shuffling and choosing over slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly chooses one element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_u64(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_u64(rng, self.len() as u64) as usize])
            }
        }
    }
}

/// `rand::prelude`, re-exporting the common traits.
pub mod prelude {
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Step(u64);
    impl RngCore for Step {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Step(7);
        for _ in 0..1000 {
            let x: usize = r.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u32 = r.gen_range(5..=9);
            assert!((5..=9).contains(&y));
            let f: f64 = r.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use seq::SliceRandom;
        let mut v: Vec<u32> = (0..50).collect();
        let mut r = Step(3);
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = Step(11);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
