//! Offline stand-in for the `rand_chacha` crate: [`ChaCha8Rng`], a genuine
//! ChaCha stream cipher with 8 rounds driving the vendored `rand` traits.
//!
//! The keystream is a faithful ChaCha8 implementation (D. J. Bernstein's
//! quarter-round schedule, 64-bit block counter); `seed_from_u64` expands the
//! seed with SplitMix64 like upstream `rand`. Streams are deterministic per
//! seed across platforms, though not bit-identical to upstream `rand_chacha`
//! (which draws words from the block in a different order).

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;
const WORDS_PER_BLOCK: usize = 16;

/// A ChaCha8 random number generator.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Key (8 words) retained to regenerate blocks.
    key: [u32; 8],
    /// Stream nonce (2 words).
    nonce: [u32; 2],
    /// 64-bit block counter of the *next* block.
    counter: u64,
    /// Current decoded block.
    block: [u32; WORDS_PER_BLOCK],
    /// Next word index within `block` (WORDS_PER_BLOCK = exhausted).
    cursor: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

fn chacha_block(key: &[u32; 8], counter: u64, nonce: &[u32; 2]) -> [u32; WORDS_PER_BLOCK] {
    // "expand 32-byte k"
    let mut state: [u32; 16] = [
        0x6170_7865,
        0x3320_646e,
        0x7962_2d32,
        0x6b20_6574,
        key[0],
        key[1],
        key[2],
        key[3],
        key[4],
        key[5],
        key[6],
        key[7],
        counter as u32,
        (counter >> 32) as u32,
        nonce[0],
        nonce[1],
    ];
    let initial = state;
    for _ in 0..ROUNDS / 2 {
        // Column round.
        quarter_round(&mut state, 0, 4, 8, 12);
        quarter_round(&mut state, 1, 5, 9, 13);
        quarter_round(&mut state, 2, 6, 10, 14);
        quarter_round(&mut state, 3, 7, 11, 15);
        // Diagonal round.
        quarter_round(&mut state, 0, 5, 10, 15);
        quarter_round(&mut state, 1, 6, 11, 12);
        quarter_round(&mut state, 2, 7, 8, 13);
        quarter_round(&mut state, 3, 4, 9, 14);
    }
    for (s, i) in state.iter_mut().zip(initial) {
        *s = s.wrapping_add(i);
    }
    state
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        self.block = chacha_block(&self.key, self.counter, &self.nonce);
        self.counter = self.counter.wrapping_add(1);
        self.cursor = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let w = splitmix64(&mut sm);
            pair[0] = w as u32;
            if pair.len() > 1 {
                pair[1] = (w >> 32) as u32;
            }
        }
        ChaCha8Rng {
            key,
            nonce: [0, 0],
            counter: 0,
            block: [0; WORDS_PER_BLOCK],
            cursor: WORDS_PER_BLOCK,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        if self.cursor + 2 > WORDS_PER_BLOCK {
            self.refill();
        }
        let lo = self.block[self.cursor] as u64;
        let hi = self.block[self.cursor + 1] as u64;
        self.cursor += 2;
        lo | (hi << 32)
    }

    fn next_u32(&mut self) -> u32 {
        if self.cursor >= WORDS_PER_BLOCK {
            self.refill();
        }
        let w = self.block[self.cursor];
        self.cursor += 1;
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn ietf_test_vector_block_zero() {
        // RFC 8439 §2.3.2 uses 20 rounds; instead verify the 8-round cipher
        // against itself structurally: block changes with counter and key.
        let key = [1, 2, 3, 4, 5, 6, 7, 8];
        let b0 = chacha_block(&key, 0, &[0, 0]);
        let b1 = chacha_block(&key, 1, &[0, 0]);
        assert_ne!(b0, b1);
        let other = chacha_block(&[9, 2, 3, 4, 5, 6, 7, 8], 0, &[0, 0]);
        assert_ne!(b0, other);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn range_sampling_is_roughly_uniform() {
        let mut r = ChaCha8Rng::seed_from_u64(9);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[r.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!(
                (700..1300).contains(&c),
                "bucket count {c} far from uniform"
            );
        }
    }
}
