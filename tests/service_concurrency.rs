//! Concurrency regression test for the `DistanceService` ticket contract:
//! `BatchTicket` is `Sync`, so N threads may hammer `try_wait` /
//! `wait_timeout` on one shared ticket while the snapshot publisher keeps
//! advancing under the workers. The service answers each batch **exactly
//! once**; the ticket caches that answer, so every poller — and every
//! later wait variant, including `wait_timeout` after an answered
//! `try_wait` — observes the *same* `BatchAnswer`.

use htsp::baselines::DchBaseline;
use htsp::graph::{
    gen, Dist, Graph, IndexMaintainer, Query, QuerySession, QuerySet, QueryView, SnapshotPublisher,
    VertexId,
};
use htsp::search::dijkstra_distance;
use htsp::throughput::{
    AdmissionPolicy, BatchAnswer, BatchResult, DistanceService, LatencyHistogram, QueryBatch,
    SubmitOutcome,
};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A `QueryView` decorator that makes every query take at least `delay`
/// and counts executed queries — the deterministic "overloaded server" for
/// the admission-policy tests below.
struct SlowView {
    inner: Arc<dyn QueryView>,
    delay: Duration,
    executed: Arc<AtomicU64>,
}

struct SlowSession<'a> {
    inner: Box<dyn QuerySession + 'a>,
    delay: Duration,
    executed: &'a AtomicU64,
}

impl QuerySession for SlowSession<'_> {
    fn distance(&mut self, s: VertexId, t: VertexId) -> Dist {
        self.executed.fetch_add(1, Ordering::Relaxed);
        std::thread::sleep(self.delay);
        self.inner.distance(s, t)
    }
}

impl QueryView for SlowView {
    fn algorithm(&self) -> &'static str {
        "slow"
    }
    fn stage(&self) -> usize {
        self.inner.stage()
    }
    fn distance(&self, s: VertexId, t: VertexId) -> Dist {
        self.executed.fetch_add(1, Ordering::Relaxed);
        std::thread::sleep(self.delay);
        self.inner.distance(s, t)
    }
    fn session(&self) -> Box<dyn QuerySession + '_> {
        Box::new(SlowSession {
            inner: self.inner.session(),
            delay: self.delay,
            executed: &self.executed,
        })
    }
    fn graph(&self) -> &Graph {
        self.inner.graph()
    }
}

/// One worker over a view where every query sleeps `delay`.
fn slow_service(
    g: &Graph,
    delay: Duration,
    policy: AdmissionPolicy,
) -> (DistanceService, Arc<AtomicU64>) {
    let idx = DchBaseline::build(g);
    let executed = Arc::new(AtomicU64::new(0));
    let view: Arc<dyn QueryView> = Arc::new(SlowView {
        inner: idx.current_view(),
        delay,
        executed: Arc::clone(&executed),
    });
    let publisher = Arc::new(SnapshotPublisher::new(view));
    let service = DistanceService::with_policy(publisher, 1, None, policy);
    (service, executed)
}

fn answers_equal(a: &BatchAnswer, b: &BatchAnswer) -> bool {
    a.distances == b.distances
        && a.snapshot_version == b.snapshot_version
        && a.stage == b.stage
        && a.algorithm == b.algorithm
}

#[test]
fn shared_tickets_are_answered_once_under_concurrent_polling() {
    let g = gen::grid(8, 8, gen::WeightRange::new(1, 20), 5);
    let idx = DchBaseline::build(&g);
    let view = idx.current_view();
    let publisher = Arc::new(SnapshotPublisher::new(Arc::clone(&view)));
    let service = DistanceService::start(Arc::clone(&publisher), 2);
    let queries = QuerySet::random(&g, 6, 13);

    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        // The publisher keeps advancing (same machinery republished, so
        // answers stay comparable against one graph) — workers re-pin
        // between batches the whole time.
        let publisher_thread = {
            let stop = &stop;
            let publisher = &publisher;
            let view = &view;
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    publisher.publish(Arc::clone(view));
                    std::thread::yield_now();
                }
            })
        };

        for round in 0..24 {
            let ticket = service.submit(QueryBatch::PointToPoint(queries.as_slice().to_vec()));
            // 4 threads race on the one shared ticket, mixing the two
            // polling variants; each returns the answer it observed.
            // An inner scope bounds the shared borrows so the consuming
            // `wait()` below can still move the ticket.
            let observed: Vec<BatchAnswer> = std::thread::scope(|polling| {
                let ticket = &ticket;
                let polls: Vec<_> = (0..4)
                    .map(|p| {
                        polling.spawn(move || loop {
                            let got = if (round + p) % 2 == 0 {
                                ticket.try_wait()
                            } else {
                                ticket.wait_timeout(Duration::from_micros(200))
                            };
                            if let Some(answer) = got {
                                return answer;
                            }
                        })
                    })
                    .collect();
                polls
                    .into_iter()
                    .map(|h| h.join().expect("poller panicked"))
                    .collect()
            });
            // One answer, observed identically by every poller.
            for other in &observed[1..] {
                assert!(
                    answers_equal(&observed[0], other),
                    "two pollers observed different answers for one ticket"
                );
            }
            // wait_timeout *after* the answered try_wait polls above must
            // return that same answer (the regression this test pins).
            let replay = ticket
                .wait_timeout(Duration::from_millis(1))
                .expect("answered ticket must keep its answer");
            assert!(answers_equal(&observed[0], &replay));
            let replay = ticket.try_wait().expect("cached answer");
            assert!(answers_equal(&observed[0], &replay));
            // And the consuming wait agrees too.
            let last = ticket.wait();
            assert!(answers_equal(&observed[0], &last));
            // The answer is correct (the graph never changes, only the
            // version advances) and tagged with a real version.
            for (q, &d) in queries.iter().zip(&last.distances) {
                assert_eq!(d, dijkstra_distance(&g, q.source, q.target));
            }
            assert!(last.snapshot_version <= publisher.version());
        }
        stop.store(true, Ordering::Relaxed);
        publisher_thread.join().expect("publisher thread panicked");
    });
    service.shutdown();
}

#[test]
fn many_threads_submit_and_poll_disjoint_tickets() {
    // Ticket independence under load: 8 submitter threads each fire 16
    // batches, polling each to completion; answers never leak between
    // tickets (each batch queries a distinct pair, so a crossed answer
    // would be visible as a wrong distance).
    let g = gen::grid(7, 7, gen::WeightRange::new(1, 15), 3);
    let idx = DchBaseline::build(&g);
    let publisher = Arc::new(SnapshotPublisher::new(idx.current_view()));
    let service = DistanceService::start(publisher, 3);
    let queries = QuerySet::random(&g, 8 * 16, 29);

    std::thread::scope(|scope| {
        for w in 0..8usize {
            let service = &service;
            let queries = queries.as_slice();
            let g = &g;
            scope.spawn(move || {
                for k in 0..16 {
                    let q: Query = queries[w * 16 + k];
                    let ticket = service.submit(QueryBatch::PointToPoint(vec![q]));
                    let answer = loop {
                        if let Some(a) = ticket.wait_timeout(Duration::from_millis(5)) {
                            break a;
                        }
                    };
                    assert_eq!(
                        answer.distances,
                        vec![dijkstra_distance(g, q.source, q.target)],
                        "ticket received another batch's answer"
                    );
                }
            });
        }
    });
    service.shutdown();
}

#[test]
fn shed_keeps_p95_bounded_where_block_lets_it_diverge() {
    // Deterministic overload: every query sleeps 1 ms on a single worker,
    // and a burst of 300 single-pair batches arrives at one instant. Under
    // Block the queue absorbs all 300 and the tail waits ~300 ms; under
    // Shed{max_depth: 4} at most ~5 requests are ever in flight, so every
    // *accepted* request answers within a few queue drains — the rest shed.
    let g = gen::grid(6, 6, gen::WeightRange::new(1, 10), 3);
    let queries = QuerySet::random(&g, 300, 17);
    let delay = Duration::from_millis(1);

    let run = |policy: AdmissionPolicy| {
        let (service, _executed) = slow_service(&g, delay, policy);
        let burst_at = Instant::now();
        let mut accepted = Vec::new();
        let mut shed = 0u64;
        for q in &queries {
            match service.try_submit_at(QueryBatch::PointToPoint(vec![*q]), burst_at) {
                SubmitOutcome::Accepted(t) => accepted.push(t),
                SubmitOutcome::Shed => shed += 1,
                SubmitOutcome::Expired => panic!("no deadline policy in this test"),
            }
        }
        let mut hist = LatencyHistogram::new();
        for t in accepted {
            let answer = t.wait();
            hist.record(answer.answered_at.saturating_duration_since(burst_at));
        }
        let report = service.shutdown();
        assert_eq!(report.drained + report.abandoned, 0, "all tickets resolved");
        (hist, shed)
    };

    let (block_hist, block_shed) = run(AdmissionPolicy::Block);
    let (shed_hist, shed_shed) = run(AdmissionPolicy::Shed { max_depth: 4 });

    assert_eq!(block_shed, 0, "Block never sheds");
    assert!(shed_shed > 0, "Shed must reject most of a 300-deep burst");
    assert_eq!(block_hist.count(), 300);
    assert_eq!(shed_hist.count() + shed_shed, 300);

    let block_p95 = block_hist.quantile(0.95);
    let shed_p95 = shed_hist.quantile(0.95);
    // Block charges the burst's queueing delay to the tail: with 300
    // requests at >= 1 ms each, p95 sits past the ~285th drain.
    assert!(
        block_p95 >= Duration::from_millis(100),
        "Block p95 {block_p95:?} should reflect the full backlog"
    );
    // Shed's p95 is bounded by (max_depth + 1) queue drains plus
    // scheduling noise — far below the Block tail.
    assert!(
        shed_p95 < block_p95 / 2,
        "Shed p95 {shed_p95:?} must stay well under Block p95 {block_p95:?}"
    );
}

#[test]
fn deadline_expired_jobs_are_never_executed() {
    let g = gen::grid(5, 5, gen::WeightRange::new(1, 10), 7);
    let queries = QuerySet::random(&g, 8, 23);
    // Every query holds the single worker 60 ms; budget is 20 ms.
    let (service, executed) = slow_service(
        &g,
        Duration::from_millis(60),
        AdmissionPolicy::Deadline {
            budget: Duration::from_millis(20),
        },
    );

    // Job A is accepted fresh and starts executing immediately.
    let a = service
        .try_submit(QueryBatch::PointToPoint(vec![queries.as_slice()[0]]))
        .expect_accepted();
    // While the worker is busy with A, submit fresh jobs: accepted (their
    // 20 ms deadlines are in the future) but doomed to expire in the queue
    // behind A's 60 ms execution.
    std::thread::sleep(Duration::from_millis(5));
    let doomed: Vec<_> = queries.as_slice()[1..]
        .iter()
        .map(|&q| {
            service
                .try_submit(QueryBatch::PointToPoint(vec![q]))
                .expect_accepted()
        })
        .collect();
    // And one already-stale job: expired at submit, never even enqueued.
    let stale = service.try_submit_at(
        QueryBatch::PointToPoint(vec![queries.as_slice()[1]]),
        Instant::now() - Duration::from_millis(50),
    );
    assert!(matches!(stale, SubmitOutcome::Expired));

    assert!(a.wait_result().answered().is_some(), "fresh job answers");
    for t in doomed {
        assert!(
            matches!(t.wait_result(), BatchResult::Expired),
            "jobs stuck behind a 60 ms execution must expire in the queue"
        );
    }
    let stats = service.stats();
    assert_eq!(stats.expired_at_submit, 1);
    assert_eq!(stats.expired_in_queue, 7);
    // The proof that expiry happens *before* execution: only job A's single
    // query ever reached the view.
    assert_eq!(executed.load(Ordering::Relaxed), 1);
    service.shutdown();
}

#[test]
fn every_accepted_ticket_resolves_exactly_once_under_shedding() {
    // 4 submitter threads race 50 batches each into a depth-8 queue; every
    // accepted ticket must resolve to exactly one Answered result, and the
    // books must balance: accepted = answered, submitted = accepted + shed.
    let g = gen::grid(6, 6, gen::WeightRange::new(1, 10), 11);
    let queries = QuerySet::random(&g, 200, 31);
    let (service, _executed) = slow_service(
        &g,
        Duration::from_micros(200),
        AdmissionPolicy::Shed { max_depth: 8 },
    );

    let answered: u64 = std::thread::scope(|scope| {
        (0..4usize)
            .map(|w| {
                let service = &service;
                let queries = queries.as_slice();
                let g = &g;
                scope.spawn(move || {
                    let mut answered = 0u64;
                    for k in 0..50 {
                        let q = queries[w * 50 + k];
                        match service.try_submit(QueryBatch::PointToPoint(vec![q])) {
                            SubmitOutcome::Accepted(t) => {
                                let answer = match t.wait_result() {
                                    BatchResult::Answered(a) => a,
                                    other => panic!("accepted ticket resolved as {other:?}"),
                                };
                                assert_eq!(
                                    answer.distances,
                                    vec![dijkstra_distance(g, q.source, q.target)]
                                );
                                // The ticket keeps its one answer.
                                assert!(t.try_wait_result().is_some());
                                answered += 1;
                            }
                            SubmitOutcome::Shed => {}
                            SubmitOutcome::Expired => panic!("no deadline policy here"),
                        }
                    }
                    answered
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("submitter panicked"))
            .sum()
    });

    let stats = service.stats();
    assert_eq!(stats.submitted, 200);
    assert_eq!(stats.accepted, answered);
    assert_eq!(stats.answered, answered);
    assert_eq!(stats.shed, 200 - answered);
    let report = service.shutdown();
    assert_eq!(report.drained + report.abandoned, 0);
}
