//! Concurrency regression test for the `DistanceService` ticket contract:
//! `BatchTicket` is `Sync`, so N threads may hammer `try_wait` /
//! `wait_timeout` on one shared ticket while the snapshot publisher keeps
//! advancing under the workers. The service answers each batch **exactly
//! once**; the ticket caches that answer, so every poller — and every
//! later wait variant, including `wait_timeout` after an answered
//! `try_wait` — observes the *same* `BatchAnswer`.

use htsp::baselines::DchBaseline;
use htsp::graph::{gen, IndexMaintainer, Query, QuerySet, SnapshotPublisher};
use htsp::search::dijkstra_distance;
use htsp::throughput::{BatchAnswer, DistanceService, QueryBatch};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn answers_equal(a: &BatchAnswer, b: &BatchAnswer) -> bool {
    a.distances == b.distances
        && a.snapshot_version == b.snapshot_version
        && a.stage == b.stage
        && a.algorithm == b.algorithm
}

#[test]
fn shared_tickets_are_answered_once_under_concurrent_polling() {
    let g = gen::grid(8, 8, gen::WeightRange::new(1, 20), 5);
    let idx = DchBaseline::build(&g);
    let view = idx.current_view();
    let publisher = Arc::new(SnapshotPublisher::new(Arc::clone(&view)));
    let service = DistanceService::start(Arc::clone(&publisher), 2);
    let queries = QuerySet::random(&g, 6, 13);

    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        // The publisher keeps advancing (same machinery republished, so
        // answers stay comparable against one graph) — workers re-pin
        // between batches the whole time.
        let publisher_thread = {
            let stop = &stop;
            let publisher = &publisher;
            let view = &view;
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    publisher.publish(Arc::clone(view));
                    std::thread::yield_now();
                }
            })
        };

        for round in 0..24 {
            let ticket = service.submit(QueryBatch::PointToPoint(queries.as_slice().to_vec()));
            // 4 threads race on the one shared ticket, mixing the two
            // polling variants; each returns the answer it observed.
            // An inner scope bounds the shared borrows so the consuming
            // `wait()` below can still move the ticket.
            let observed: Vec<BatchAnswer> = std::thread::scope(|polling| {
                let ticket = &ticket;
                let polls: Vec<_> = (0..4)
                    .map(|p| {
                        polling.spawn(move || loop {
                            let got = if (round + p) % 2 == 0 {
                                ticket.try_wait()
                            } else {
                                ticket.wait_timeout(Duration::from_micros(200))
                            };
                            if let Some(answer) = got {
                                return answer;
                            }
                        })
                    })
                    .collect();
                polls
                    .into_iter()
                    .map(|h| h.join().expect("poller panicked"))
                    .collect()
            });
            // One answer, observed identically by every poller.
            for other in &observed[1..] {
                assert!(
                    answers_equal(&observed[0], other),
                    "two pollers observed different answers for one ticket"
                );
            }
            // wait_timeout *after* the answered try_wait polls above must
            // return that same answer (the regression this test pins).
            let replay = ticket
                .wait_timeout(Duration::from_millis(1))
                .expect("answered ticket must keep its answer");
            assert!(answers_equal(&observed[0], &replay));
            let replay = ticket.try_wait().expect("cached answer");
            assert!(answers_equal(&observed[0], &replay));
            // And the consuming wait agrees too.
            let last = ticket.wait();
            assert!(answers_equal(&observed[0], &last));
            // The answer is correct (the graph never changes, only the
            // version advances) and tagged with a real version.
            for (q, &d) in queries.iter().zip(&last.distances) {
                assert_eq!(d, dijkstra_distance(&g, q.source, q.target));
            }
            assert!(last.snapshot_version <= publisher.version());
        }
        stop.store(true, Ordering::Relaxed);
        publisher_thread.join().expect("publisher thread panicked");
    });
    service.shutdown();
}

#[test]
fn many_threads_submit_and_poll_disjoint_tickets() {
    // Ticket independence under load: 8 submitter threads each fire 16
    // batches, polling each to completion; answers never leak between
    // tickets (each batch queries a distinct pair, so a crossed answer
    // would be visible as a wrong distance).
    let g = gen::grid(7, 7, gen::WeightRange::new(1, 15), 3);
    let idx = DchBaseline::build(&g);
    let publisher = Arc::new(SnapshotPublisher::new(idx.current_view()));
    let service = DistanceService::start(publisher, 3);
    let queries = QuerySet::random(&g, 8 * 16, 29);

    std::thread::scope(|scope| {
        for w in 0..8usize {
            let service = &service;
            let queries = queries.as_slice();
            let g = &g;
            scope.spawn(move || {
                for k in 0..16 {
                    let q: Query = queries[w * 16 + k];
                    let ticket = service.submit(QueryBatch::PointToPoint(vec![q]));
                    let answer = loop {
                        if let Some(a) = ticket.wait_timeout(Duration::from_millis(5)) {
                            break a;
                        }
                    };
                    assert_eq!(
                        answer.distances,
                        vec![dijkstra_distance(g, q.source, q.target)],
                        "ticket received another batch's answer"
                    );
                }
            });
        }
    });
    service.shutdown();
}
