//! Index snapshots and warm restart, end to end: every algorithm of the
//! registry saves its state through [`RoadNetworkServer::save_snapshot`],
//! restarts through [`ServerBuilder::start_from_snapshot`], and answers
//! exactly as before; corrupt snapshot files are rejected with typed
//! errors, never panics.

use htsp::graph::gen::{grid, WeightRange};
use htsp::graph::{IndexSnapshot, QuerySet, SnapshotError};
use htsp::search::dijkstra_distance;
use htsp::{AlgorithmKind, BuildParams, CoalescePolicy, RoadNetworkServer};
use std::path::PathBuf;

fn temp_snapshot_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("htsp_snap_{}_{name}.snap", std::process::id()))
}

/// Saves, restores, and cross-checks one algorithm end to end.
fn round_trip(kind: AlgorithmKind) {
    let g = grid(7, 7, WeightRange::new(1, 25), 31);
    let params = BuildParams::new(2, 1);
    let server = RoadNetworkServer::builder()
        .algorithm(kind)
        .build_params(params)
        .coalesce(CoalescePolicy::manual())
        .start(&g);

    // Drift a few weights so the snapshot captures a repaired index, not
    // the pristine build.
    let mut working = g.clone();
    for i in [3usize, 17, 40] {
        let e = htsp::graph::EdgeId::from_index(i % working.num_edges());
        let old = working.edge_weight(e);
        let update = htsp::graph::EdgeUpdate::new(e, old, old + 2);
        working.apply_batch(&htsp::graph::UpdateBatch::from_updates(vec![update]));
        server.submit(update);
    }
    server.feed().flush().wait_applied();

    let queries = QuerySet::random(&working, 40, 91);
    let view = server.snapshot();
    let before: Vec<_> = queries
        .iter()
        .map(|q| view.distance(q.source, q.target))
        .collect();

    let path = temp_snapshot_path(kind.name());
    server.save_snapshot(&path).expect("save snapshot");
    server.shutdown();

    let restored = RoadNetworkServer::builder()
        .start_from_snapshot(&path)
        .expect("warm restart");
    assert_eq!(restored.algorithm(), kind.name());
    let view = restored.snapshot();
    // The restored graph carries the drifted weights.
    restored.with_graph(|rg| {
        for e in (0..rg.num_edges()).map(htsp::graph::EdgeId::from_index) {
            assert_eq!(rg.edge_weight(e), working.edge_weight(e));
        }
    });
    for (q, &expect) in queries.iter().zip(&before) {
        let got = view.distance(q.source, q.target);
        assert_eq!(
            got,
            expect,
            "{} answer drifted across restart for {q:?}",
            kind.name()
        );
        assert_eq!(
            got,
            dijkstra_distance(&working, q.source, q.target),
            "{} restored answer disagrees with Dijkstra for {q:?}",
            kind.name()
        );
    }
    restored.shutdown();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn baseline_algorithms_survive_warm_restart() {
    for kind in [
        AlgorithmKind::BiDijkstra,
        AlgorithmKind::Dch,
        AlgorithmKind::Dh2h,
        AlgorithmKind::Toain,
    ] {
        round_trip(kind);
    }
}

#[test]
fn partitioned_algorithms_survive_warm_restart() {
    for kind in [AlgorithmKind::NChP, AlgorithmKind::PTdP] {
        round_trip(kind);
    }
}

#[test]
fn mhl_family_survives_warm_restart() {
    for kind in [
        AlgorithmKind::Mhl,
        AlgorithmKind::Pmhl,
        AlgorithmKind::PostMhl,
    ] {
        round_trip(kind);
    }
}

#[test]
fn corrupt_snapshot_files_are_rejected_with_typed_errors() {
    let g = grid(6, 6, WeightRange::new(1, 9), 7);
    let server = RoadNetworkServer::builder()
        .algorithm(AlgorithmKind::Dch)
        .coalesce(CoalescePolicy::manual())
        .start(&g);
    let path = temp_snapshot_path("corruption");
    server.save_snapshot(&path).expect("save snapshot");
    server.shutdown();
    let clean = std::fs::read(&path).expect("read snapshot back");

    let restart = |bytes: &[u8]| {
        std::fs::write(&path, bytes).expect("write corrupt file");
        match RoadNetworkServer::builder().start_from_snapshot(&path) {
            Ok(_) => panic!("corrupt snapshot must be rejected"),
            Err(err) => err,
        }
    };

    // Wrong magic.
    let mut bad = clean.clone();
    bad[0] = b'X';
    assert!(matches!(restart(&bad), SnapshotError::BadMagic));

    // Unsupported format version.
    let mut bad = clean.clone();
    bad[8] = 0xFF;
    assert!(matches!(
        restart(&bad),
        SnapshotError::UnsupportedVersion { found, .. } if found != 0
    ));

    // Bit rot in the payload trips the checksum.
    let mut bad = clean.clone();
    let mid = clean.len() / 2;
    bad[mid] ^= 0x40;
    assert!(matches!(
        restart(&bad),
        SnapshotError::ChecksumMismatch { .. }
    ));

    // Truncation at a few representative points (header, payload, tail).
    for cut in [4, 20, clean.len() / 2, clean.len() - 3] {
        let err = restart(&clean[..cut]);
        assert!(
            matches!(err, SnapshotError::Truncated { .. }),
            "truncation at {cut} gave {err:?}"
        );
    }

    // The pristine file still restores after all that.
    std::fs::write(&path, &clean).expect("restore clean file");
    let server = RoadNetworkServer::builder()
        .start_from_snapshot(&path)
        .expect("clean snapshot restores");
    server.shutdown();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn snapshot_state_with_wrong_algorithm_name_is_rejected() {
    let g = grid(5, 5, WeightRange::new(1, 9), 3);
    let server = RoadNetworkServer::builder()
        .algorithm(AlgorithmKind::Dch)
        .coalesce(CoalescePolicy::manual())
        .start(&g);
    let path = temp_snapshot_path("bad_name");
    server.save_snapshot(&path).expect("save snapshot");
    server.shutdown();

    // Rewrite the algorithm name to something unknown; the checksum is
    // recomputed so only the registry lookup can fail.
    let mut snap = IndexSnapshot::read_from(&path).expect("reparse");
    snap.algorithm = "NotAnAlgorithm".to_string();
    snap.write_to(&path).expect("rewrite");
    let err = match RoadNetworkServer::builder().start_from_snapshot(&path) {
        Ok(_) => panic!("unknown algorithm must be rejected"),
        Err(err) => err,
    };
    assert!(matches!(err, SnapshotError::Malformed(_)), "got {err:?}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn storage_gauges_are_registered_and_refreshable() {
    let g = grid(6, 6, WeightRange::new(1, 9), 5);
    let server = RoadNetworkServer::builder()
        .algorithm(AlgorithmKind::Dh2h)
        .coalesce(CoalescePolicy::manual())
        .start(&g);
    let parts = server.refresh_storage_gauges();
    assert!(parts.iter().any(|&(c, _)| c == "graph"));
    assert!(parts.iter().any(|&(c, _)| c == "h2h_labels"));
    assert!(parts.iter().all(|&(_, bytes)| bytes > 0));
    let prom = server.telemetry().export_prometheus();
    assert!(
        prom.contains("htsp_storage_bytes{component=\"graph\"}"),
        "missing graph storage gauge in:\n{prom}"
    );
    assert!(prom.contains("htsp_storage_bytes{component=\"h2h_labels\"}"));
    server.shutdown();
}

/// Extracts the value of `htsp_storage_bytes{component="<component>"}` from a
/// Prometheus export.
fn storage_gauge_value(prom: &str, component: &str) -> u64 {
    let needle = format!("htsp_storage_bytes{{component=\"{component}\"}}");
    prom.lines()
        .find_map(|l| l.strip_prefix(&needle))
        .unwrap_or_else(|| panic!("missing {needle} in:\n{prom}"))
        .trim()
        .parse()
        .expect("gauge value parses")
}

#[test]
fn storage_gauges_are_correct_immediately_after_warm_restart() {
    let g = grid(7, 7, WeightRange::new(1, 25), 9);
    let server = RoadNetworkServer::builder()
        .algorithm(AlgorithmKind::Dh2h)
        .coalesce(CoalescePolicy::manual())
        .start(&g);
    let path = temp_snapshot_path("gauge_gap");
    server.save_snapshot(&path).expect("save snapshot");
    server.shutdown();

    let restored = RoadNetworkServer::builder()
        .start_from_snapshot(&path)
        .expect("warm restart");
    // Regression: the gauges must already be correct *before* any explicit
    // refresh — start_from_snapshot re-measures the restored index itself.
    let prom = restored.telemetry().export_prometheus();
    let restored_graph_bytes = restored.with_graph(|rg| rg.heap_bytes()) as u64;
    assert_eq!(
        storage_gauge_value(&prom, "graph"),
        restored_graph_bytes,
        "graph gauge stale after warm restart"
    );
    // An independent re-measurement must agree with what the export showed.
    for (component, bytes) in restored.refresh_storage_gauges() {
        assert_eq!(
            storage_gauge_value(&prom, component),
            bytes as u64,
            "{component} gauge stale after warm restart"
        );
        assert!(bytes > 0, "{component} measured empty");
    }
    restored.shutdown();
    let _ = std::fs::remove_file(&path);
}
