//! Concurrency integration test for the read/write index API: query worker
//! threads race a maintenance thread through the [`QueryEngine`], and every
//! answer must be exact on the graph snapshot that was current when the
//! query was answered — no torn reads, no staleness beyond the published
//! stage.
//!
//! The engine's `verify` mode re-derives every answer with a fresh Dijkstra
//! run on the answering view's own graph ([`QueryView::graph`]), which is
//! exactly that assertion: a worker may observe an older published stage
//! (fine — that view carries the older graph and is exact on it), but it may
//! never observe a half-repaired index.

use htsp::baselines::{BiDijkstraBaseline, DchBaseline};
use htsp::core::{Pmhl, PmhlConfig, PostMhl, PostMhlConfig};
use htsp::graph::{gen, Graph, IndexMaintainer};
use htsp::throughput::QueryEngine;
use std::time::Duration;

fn road() -> Graph {
    gen::grid_with_diagonals(12, 12, gen::WeightRange::new(2, 60), 0.15, 23)
}

fn race(maintainer: &mut dyn IndexMaintainer, workers: usize) {
    let g = road();
    let engine = QueryEngine::builder()
        .workers(workers)
        .batches(4)
        .update_volume(30)
        .pause_between_batches(Duration::from_millis(25))
        .query_pool(256)
        .verify(true)
        .seed(91)
        .build();
    let report = engine.run(&g, maintainer);
    assert_eq!(
        report.verify_failures,
        0,
        "{} returned answers that disagree with Dijkstra on the answering \
         snapshot's graph; first failure: {}",
        report.algorithm,
        report.first_failure.as_deref().unwrap_or("<missing>")
    );
    assert!(
        report.total_queries > 0,
        "{}: workers answered no queries",
        report.algorithm
    );
    assert_eq!(report.num_workers, workers);
    assert_eq!(report.timelines.len(), 4);
    // Every batch published at least one snapshot.
    assert!(
        report.publications.len() >= 4,
        "{}: expected ≥4 publications, saw {:?}",
        report.algorithm,
        report.publications
    );
    // The per-stage tally is consistent with the total.
    assert_eq!(
        report.per_stage_queries.iter().sum::<u64>(),
        report.total_queries
    );
}

#[test]
fn postmhl_serves_exact_answers_while_maintenance_races() {
    let g = road();
    let mut idx = PostMhl::build(&g, PostMhlConfig::default());
    race(&mut idx, 4);
}

#[test]
fn pmhl_serves_exact_answers_while_maintenance_races() {
    let g = road();
    let mut idx = Pmhl::build(
        &g,
        PmhlConfig {
            num_partitions: 4,
            num_threads: 2,
            seed: 3,
        },
    );
    race(&mut idx, 4);
}

#[test]
fn dch_baseline_serves_exact_answers_while_maintenance_races() {
    let g = road();
    let mut idx = DchBaseline::build(&g);
    race(&mut idx, 4);
}

#[test]
fn bidijkstra_baseline_serves_exact_answers_while_maintenance_races() {
    let g = road();
    let mut idx = BiDijkstraBaseline::new(&g);
    race(&mut idx, 6);
}

#[test]
fn multi_stage_snapshots_are_observed_during_maintenance() {
    // With enough batches and slow-ish repairs, the workers must observe at
    // least two distinct stages of PostMHL: an early (BiDijkstra/PCH)
    // snapshot that is current during the multi-millisecond repair, and the
    // final cross-boundary one that serves between batches.
    let g = gen::grid_with_diagonals(24, 24, gen::WeightRange::new(2, 60), 0.1, 29);
    let mut idx = PostMhl::build(&g, PostMhlConfig::default());
    let engine = QueryEngine::builder()
        .workers(4)
        .batches(6)
        .update_volume(150)
        .pause_between_batches(Duration::from_millis(10))
        .query_pool(256)
        .seed(17)
        .build();
    let report = engine.run(&g, &mut idx);
    let stages_hit = report.per_stage_queries.iter().filter(|&&c| c > 0).count();
    assert!(
        stages_hit >= 2,
        "workers never observed an intermediate snapshot - staged publication is broken: {:?}",
        report.per_stage_queries
    );
    // The publication log must show the staged release pattern: every batch
    // publishes intermediate stages before ending at the final stage.
    let final_stage = idx.num_query_stages() - 1;
    assert_eq!(
        report.publications.last().map(|&(_, s)| s),
        Some(final_stage)
    );
    assert!(
        report.publications.iter().any(|&(_, s)| s < final_stage),
        "no intermediate stage was ever published: {:?}",
        report.publications
    );
}
