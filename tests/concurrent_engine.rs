//! Concurrency integration test for the read/write index API: query worker
//! threads race a maintenance thread through the [`QueryEngine`], and every
//! answer must be exact on the graph snapshot that was current when the
//! query was answered — no torn reads, no staleness beyond the published
//! stage.
//!
//! The engine's `verify` mode re-derives every answer with a fresh Dijkstra
//! run on the answering view's own graph ([`QueryView::graph`]), which is
//! exactly that assertion: a worker may observe an older published stage
//! (fine — that view carries the older graph and is exact on it), but it may
//! never observe a half-repaired index.

use htsp::core::{Pmhl, PmhlConfig, PostMhl, PostMhlConfig};
use htsp::graph::{gen, Graph, IndexMaintainer, SnapshotPublisher, UpdateGenerator, VertexId};
use htsp::search::dijkstra_distance;
use htsp::throughput::{DistanceService, QueryBatch, QueryEngine, WorkloadKind};
use htsp::{AlgorithmKind, RoadNetworkServer};
use std::sync::Arc;
use std::time::Duration;

fn road() -> Graph {
    gen::grid_with_diagonals(12, 12, gen::WeightRange::new(2, 60), 0.15, 23)
}

fn race(maintainer: Box<dyn IndexMaintainer>, workers: usize) {
    let g = road();
    let server = RoadNetworkServer::host(&g, maintainer);
    let engine = QueryEngine::builder()
        .workers(workers)
        .batches(4)
        .update_volume(30)
        .pause_between_batches(Duration::from_millis(25))
        .query_pool(256)
        .verify(true)
        .seed(91)
        .build();
    let report = engine.run(&server);
    server.shutdown();
    assert_eq!(
        report.verify_failures,
        0,
        "{} returned answers that disagree with Dijkstra on the answering \
         snapshot's graph; first failure: {}",
        report.algorithm,
        report.first_failure.as_deref().unwrap_or("<missing>")
    );
    assert!(
        report.total_queries > 0,
        "{}: workers answered no queries",
        report.algorithm
    );
    assert_eq!(report.num_workers, workers);
    assert_eq!(report.timelines.len(), 4);
    // Every batch published at least one snapshot.
    assert!(
        report.publications.len() >= 4,
        "{}: expected ≥4 publications, saw {:?}",
        report.algorithm,
        report.publications
    );
    // The per-stage tally is consistent with the total.
    assert_eq!(
        report.per_stage_queries.iter().sum::<u64>(),
        report.total_queries
    );
}

#[test]
fn postmhl_serves_exact_answers_while_maintenance_races() {
    let g = road();
    race(Box::new(PostMhl::build(&g, PostMhlConfig::default())), 4);
}

#[test]
fn pmhl_serves_exact_answers_while_maintenance_races() {
    let g = road();
    race(
        Box::new(Pmhl::build(
            &g,
            PmhlConfig {
                num_partitions: 4,
                num_threads: 2,
                seed: 3,
            },
        )),
        4,
    );
}

#[test]
fn dch_baseline_serves_exact_answers_while_maintenance_races() {
    let g = road();
    race(AlgorithmKind::Dch.build(&g, &Default::default()), 4);
}

#[test]
fn bidijkstra_baseline_serves_exact_answers_while_maintenance_races() {
    let g = road();
    race(AlgorithmKind::BiDijkstra.build(&g, &Default::default()), 6);
}

#[test]
fn batched_sessions_race_maintenance_without_staleness() {
    // The session paths (batched point-to-point, one-to-many fans, matrix
    // blocks) race the maintenance thread with per-answer Dijkstra
    // verification: every pair must be exact on the answering session's own
    // graph snapshot, across re-pins.
    let g = road();
    for workload in [
        WorkloadKind::Batched { batch_size: 16 },
        WorkloadKind::OneToMany { fanout: 8 },
        WorkloadKind::Matrix { side: 3 },
    ] {
        let server =
            RoadNetworkServer::host(&g, Box::new(PostMhl::build(&g, PostMhlConfig::default())));
        let engine = QueryEngine::builder()
            .workers(4)
            .batches(3)
            .update_volume(30)
            .pause_between_batches(Duration::from_millis(20))
            .query_pool(256)
            .verify(true)
            .workload(workload)
            .seed(37)
            .build();
        let report = engine.run(&server);
        server.shutdown();
        assert_eq!(
            report.verify_failures,
            0,
            "{} under {workload:?}: first failure: {}",
            report.algorithm,
            report.first_failure.as_deref().unwrap_or("<missing>")
        );
        assert!(report.total_queries > 0);
        assert_eq!(report.workload, workload);
    }
}

#[test]
fn distance_service_reaches_fresh_snapshots_during_maintenance() {
    // A DistanceService keeps answering batches while the maintainer
    // repairs; after each repair, newly submitted batches must observe a
    // version at least as new as the published one and answer exactly on
    // the *current* graph.
    let mut g = road();
    let mut idx = Pmhl::build(
        &g,
        PmhlConfig {
            num_partitions: 4,
            num_threads: 2,
            seed: 5,
        },
    );
    let publisher = Arc::new(SnapshotPublisher::new(idx.current_view()));
    let service = DistanceService::start(Arc::clone(&publisher), 3);
    assert_eq!(service.num_workers(), 3);

    let targets: Vec<VertexId> = (0..24).map(|i| VertexId(i * 6)).collect();
    let mut gen_upd = UpdateGenerator::new(3);
    for round in 0..3u64 {
        // Keep traffic in flight while the repair runs on this thread.
        let inflight: Vec<_> = (0..8)
            .map(|i| {
                service.submit(QueryBatch::OneToMany {
                    source: VertexId((round as u32 * 31 + i * 7) % 144),
                    targets: targets.clone(),
                })
            })
            .collect();
        let batch = gen_upd.generate(&g, 40);
        g.apply_batch(&batch);
        idx.apply_batch(&g, &batch, &publisher);
        for ticket in inflight {
            // In-flight answers may come from any published stage; exactness
            // per snapshot is covered by the engine verify tests.
            let answer = ticket.wait();
            assert_eq!(answer.distances.len(), targets.len());
        }
        // A post-repair batch must see the final published version and be
        // exact on the current weights.
        let version = publisher.version();
        let answer = service.answer(QueryBatch::Matrix {
            sources: vec![VertexId(0), VertexId(77)],
            targets: targets.clone(),
        });
        assert!(answer.snapshot_version >= version);
        for (i, &s) in [VertexId(0), VertexId(77)].iter().enumerate() {
            for (j, &t) in targets.iter().enumerate() {
                assert_eq!(
                    answer.distances[i * targets.len() + j],
                    dijkstra_distance(&g, s, t),
                    "round {round}: service answer for ({s}, {t}) is stale"
                );
            }
        }
    }
    service.shutdown();
}

#[test]
fn multi_stage_snapshots_are_observed_during_maintenance() {
    // With enough batches and slow-ish repairs, the workers must observe at
    // least two distinct stages of PostMHL: an early (BiDijkstra/PCH)
    // snapshot that is current during the multi-millisecond repair, and the
    // final cross-boundary one that serves between batches.
    let g = gen::grid_with_diagonals(24, 24, gen::WeightRange::new(2, 60), 0.1, 29);
    let server =
        RoadNetworkServer::host(&g, Box::new(PostMhl::build(&g, PostMhlConfig::default())));
    let engine = QueryEngine::builder()
        .workers(4)
        .batches(6)
        .update_volume(150)
        .pause_between_batches(Duration::from_millis(10))
        .query_pool(256)
        .seed(17)
        .build();
    let report = engine.run(&server);
    let stages_hit = report.per_stage_queries.iter().filter(|&&c| c > 0).count();
    assert!(
        stages_hit >= 2,
        "workers never observed an intermediate snapshot - staged publication is broken: {:?}",
        report.per_stage_queries
    );
    // The publication log must show the staged release pattern: every batch
    // publishes intermediate stages before ending at the final stage.
    let final_stage = server.num_query_stages() - 1;
    server.shutdown();
    assert_eq!(
        report.publications.last().map(|&(_, s)| s),
        Some(final_stage)
    );
    assert!(
        report.publications.iter().any(|&(_, s)| s < final_stage),
        "no intermediate stage was ever published: {:?}",
        report.publications
    );
}
