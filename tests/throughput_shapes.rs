//! Integration test for the qualitative experimental claims ("shapes") that
//! EXPERIMENTS.md reports — small-scale versions of the paper's headline
//! results that must keep holding as the code evolves.

use htsp::baselines::{BiDijkstraBaseline, Dh2hBaseline};
use htsp::core::{PostMhl, PostMhlConfig};
use htsp::graph::{gen, IndexMaintainer, QuerySet, QueryView};
use htsp::throughput::{staged_throughput, QueryStats, SystemConfig, ThroughputHarness};
use htsp::RoadNetworkServer;
use std::time::Instant;

fn sample_graph() -> htsp::graph::Graph {
    gen::grid_with_diagonals(24, 24, gen::WeightRange::new(1, 80), 0.1, 5)
}

#[test]
fn indexed_queries_are_much_faster_than_bidijkstra() {
    let g = sample_graph();
    let queries = QuerySet::random(&g, 200, 3);
    let bd = BiDijkstraBaseline::new(&g);
    let h2h = Dh2hBaseline::build(&g);
    let time = |view: &dyn QueryView| {
        let t = Instant::now();
        for q in &queries {
            let _ = view.distance(q.source, q.target);
        }
        t.elapsed().as_secs_f64()
    };
    let t_bd = time(&*bd.current_view());
    let t_h2h = time(&*h2h.current_view());
    assert!(
        t_h2h < t_bd,
        "H2H queries ({t_h2h:.6}s) should beat BiDijkstra ({t_bd:.6}s)"
    );
}

#[test]
fn postmhl_final_stage_matches_h2h_speed_class() {
    // Theorem 1 / Remark 2: PostMHL's final query stage uses the same LCA
    // machinery as DH2H, so its per-query time must be in the same order of
    // magnitude (allow a generous 5x factor for measurement noise).
    let g = sample_graph();
    let queries = QuerySet::random(&g, 400, 9);
    let h2h = Dh2hBaseline::build(&g);
    let postmhl = PostMhl::build(&g, PostMhlConfig::default());
    let time = |view: &dyn QueryView| {
        let t = Instant::now();
        for q in &queries {
            let _ = view.distance(q.source, q.target);
        }
        t.elapsed().as_secs_f64() / queries.len() as f64
    };
    let t_h2h = time(&*h2h.current_view());
    let t_post = time(&*postmhl.current_view());
    assert!(
        t_post < t_h2h * 5.0,
        "PostMHL final stage ({t_post:.2e}s) should be within 5x of DH2H ({t_h2h:.2e}s)"
    );
}

#[test]
fn multi_stage_availability_increases_staged_throughput() {
    // The Figure 1 argument in model form: with identical total update time,
    // an index that can serve (even slow) queries during maintenance has a
    // strictly higher staged throughput than one that is blocked throughout.
    let staged = staged_throughput(&[(0.0, 1e-3), (2.0, 1e-5), (8.0, 1e-6)], 1e-6, 120.0);
    let blocked = staged_throughput(&[(10.0, 1e-6)], 1e-6, 120.0);
    assert!(staged > blocked);
}

#[test]
fn harness_ranks_postmhl_above_bidijkstra_in_throughput() {
    let g = sample_graph();
    let config = SystemConfig {
        update_volume: 100,
        update_interval: 120.0,
        max_response_time: 1.0,
        query_sample: 60,
    };
    let harness = ThroughputHarness::new(config, 3, 1);
    let bd_server = RoadNetworkServer::host(&g, Box::new(BiDijkstraBaseline::new(&g)));
    let post_server =
        RoadNetworkServer::host(&g, Box::new(PostMhl::build(&g, PostMhlConfig::default())));
    let r_bd = harness.run(&bd_server);
    let r_post = harness.run(&post_server);
    bd_server.shutdown();
    post_server.shutdown();
    assert!(
        r_post.throughput() > r_bd.throughput(),
        "PostMHL throughput {} should exceed BiDijkstra {}",
        r_post.throughput(),
        r_bd.throughput()
    );
}

#[test]
fn query_stats_are_finite_and_positive() {
    let stats = QueryStats::from_samples(&[1e-5, 2e-5, 3e-5]);
    assert!(stats.mean > 0.0 && stats.mean.is_finite());
    assert!(stats.variance >= 0.0);
}
