//! The staleness property of the result cache, for all nine registry
//! algorithms: **a cache hit must never cross a published version
//! boundary**. Randomized edge-update batches stream through a
//! `RoadNetworkServer` with the cache enabled while query batches (with
//! deliberate hot-pair repeats, so the cache actually serves hits) run
//! through the `DistanceService`; at the end, every answer — cached or
//! computed — must equal a fresh Dijkstra run on the graph snapshot of the
//! version that served it.
//!
//! The version→graph correspondence is reconstructed from the update
//! tickets: a batch's staged publications all answer on the post-batch
//! graph (U-Stage 1 installs the weights before the first publication), so
//! the graph at version `v` is the graph of the latest batch whose
//! `first_version ≤ v` (the initial graph for `v = 0`).

use htsp::graph::{gen, Graph, Query, QuerySet, UpdateGenerator};
use htsp::search::dijkstra_distance;
use htsp::throughput::{BatchAnswer, QueryBatch};
use htsp::{AlgorithmKind, BuildParams, CacheConfig, CoalescePolicy, RoadNetworkServer};

fn graph_at(graphs: &[(u64, Graph)], version: u64) -> &Graph {
    &graphs
        .iter()
        .rev()
        .find(|(first, _)| *first <= version)
        .expect("version 0 entry always present")
        .1
}

#[test]
fn cached_answers_never_cross_a_publication_epoch() {
    for kind in AlgorithmKind::ALL {
        let mut g = gen::grid_with_diagonals(10, 10, gen::WeightRange::new(2, 60), 0.15, 91);
        let server = RoadNetworkServer::builder()
            .algorithm(kind)
            .build_params(BuildParams::new(4, 2))
            .coalesce(CoalescePolicy::manual())
            .query_workers(2)
            .result_cache(CacheConfig {
                capacity: 128,
                shards: 2,
            })
            .start(&g);
        let cache = server.cache().expect("cache enabled").clone();

        // Hot pairs, repeated 3x inside every batch: the repeats are
        // guaranteed same-version lookups, so the cache must serve hits.
        let pool = QuerySet::random(&g, 12, 7);
        let hot: Vec<Query> = pool
            .iter()
            .chain(pool.iter())
            .chain(pool.iter())
            .copied()
            .collect();

        // (first_version, graph at that version and until the next entry).
        let mut graphs: Vec<(u64, Graph)> = vec![(0, g.clone())];
        let mut answers: Vec<BatchAnswer> = Vec::new();
        for round in 0..4u64 {
            // Serve twice per round so same-version repeats accumulate hits.
            for _ in 0..2 {
                answers.push(
                    server
                        .submit_queries(QueryBatch::PointToPoint(hot.clone()))
                        .wait(),
                );
            }
            // A randomized update batch through the feed; the manual policy
            // makes the explicit flush the publication (= invalidation)
            // boundary.
            let batch = UpdateGenerator::new(1000 * (round + 1) + kind as u64).generate(&g, 6);
            g.apply_batch(&batch);
            server.feed().submit_all(batch.as_slice().iter().copied());
            let outcome = server.feed().flush().wait_applied();
            assert_eq!(outcome.batch_len, 6, "{kind}: batch split unexpectedly");
            graphs.push((outcome.first_version, g.clone()));
        }
        answers.push(
            server
                .submit_queries(QueryBatch::PointToPoint(hot.clone()))
                .wait(),
        );

        // The cache was genuinely exercised: repeats hit, publications
        // invalidated (stale misses on the first re-query of each round).
        let stats = cache.stats();
        assert!(stats.hits > 0, "{kind}: repeated hot pairs never hit");
        assert!(
            stats.stale_misses > 0,
            "{kind}: publications never invalidated an entry"
        );
        assert!(stats.inserts > 0);
        assert!(
            cache.epoch() >= graphs.last().expect("rounds ran").0,
            "{kind}: publish events did not reach the cache epoch"
        );

        // The property: every answer (cache hits included — they are
        // indistinguishable in the answer, which is the point) is exact on
        // the graph snapshot of the version that served it.
        for answer in &answers {
            let graph = graph_at(&graphs, answer.snapshot_version);
            for (q, &d) in hot.iter().zip(&answer.distances) {
                assert_eq!(
                    d,
                    dijkstra_distance(graph, q.source, q.target),
                    "{kind}: answer for ({}, {}) served at version {} does not match \
                     that version's graph — a cached answer crossed a publication epoch",
                    q.source,
                    q.target,
                    answer.snapshot_version
                );
            }
        }
        server.shutdown();
    }
}
