//! Cross-crate integration test: every algorithm in the repository must agree
//! with Dijkstra (and therefore with each other) on the same dynamic workload,
//! across several update batches — the paper's implicit no-staleness
//! correctness requirement.
//!
//! The first test drives all nine algorithms of the [`AlgorithmKind`]
//! registry through the session API (one
//! [`QuerySession`](htsp::graph::QuerySession) per published snapshot); the
//! second exercises the per-stage snapshot views of the multi-stage indexes.
//! (The legacy `DynamicSpIndex` shim was removed in PR 3; snapshot isolation
//! under concurrent maintenance is covered by `tests/cow_snapshot_isolation.rs`;
//! read-your-writes through the server facade by `tests/server_visibility.rs`.)

use htsp::core::{Mhl, Pmhl, PmhlConfig, PostMhl, PostMhlConfig};
use htsp::graph::{gen, IndexMaintainer, QuerySet, SnapshotPublisher, UpdateGenerator};
use htsp::search::dijkstra_distance;
use htsp::{AlgorithmKind, BuildParams};

#[test]
fn all_algorithms_agree_on_a_dynamic_workload() {
    let mut g = gen::grid_with_diagonals(12, 12, gen::WeightRange::new(2, 60), 0.15, 77);
    let params = BuildParams::new(4, 2);
    let mut algorithms: Vec<Box<dyn IndexMaintainer>> = AlgorithmKind::ALL
        .iter()
        .map(|kind| kind.build(&g, &params))
        .collect();
    assert_eq!(algorithms.len(), 9);

    let mut gen_upd = UpdateGenerator::new(9);
    for round in 0..3u64 {
        let queries = QuerySet::random(&g, 40, 1000 + round);
        for alg in algorithms.iter() {
            let view = alg.current_view();
            let mut session = view.session();
            for q in &queries {
                let expect = dijkstra_distance(&g, q.source, q.target);
                assert_eq!(
                    session.distance(q.source, q.target),
                    expect,
                    "round {round}: {} disagrees with Dijkstra on {:?}",
                    alg.name(),
                    q
                );
            }
        }
        // Next traffic batch.
        let batch = gen_upd.generate(&g, 25);
        g.apply_batch(&batch);
        for alg in algorithms.iter_mut() {
            let publisher = SnapshotPublisher::new(alg.current_view());
            let timeline = alg.apply_batch(&g, &batch, &publisher);
            assert!(!timeline.stages.is_empty());
            assert!(publisher.version() >= 1, "{} published nothing", alg.name());
        }
    }
}

#[test]
fn multi_stage_indexes_are_exact_at_every_stage_after_updates() {
    let mut g = gen::grid(10, 10, gen::WeightRange::new(5, 50), 13);
    let mut pmhl = Pmhl::build(
        &g,
        PmhlConfig {
            num_partitions: 4,
            num_threads: 2,
            seed: 1,
        },
    );
    let mut postmhl = PostMhl::build(&g, PostMhlConfig::default());
    let mut mhl = Mhl::build(&g);

    let mut gen_upd = UpdateGenerator::new(21);
    let batch = gen_upd.generate(&g, 30);
    g.apply_batch(&batch);
    for maintainer in [
        &mut pmhl as &mut dyn IndexMaintainer,
        &mut postmhl as &mut dyn IndexMaintainer,
        &mut mhl as &mut dyn IndexMaintainer,
    ] {
        let publisher = htsp::graph::SnapshotPublisher::new(maintainer.current_view());
        maintainer.apply_batch(&g, &batch, &publisher);
    }

    let queries = QuerySet::random(&g, 60, 5);
    for q in &queries {
        let expect = dijkstra_distance(&g, q.source, q.target);
        for maintainer in [
            &pmhl as &dyn IndexMaintainer,
            &postmhl as &dyn IndexMaintainer,
            &mhl as &dyn IndexMaintainer,
        ] {
            for stage in 0..maintainer.num_query_stages() {
                assert_eq!(
                    maintainer.view_at_stage(stage).distance(q.source, q.target),
                    expect,
                    "{} stage {stage} mismatch for {q:?}",
                    maintainer.name()
                );
            }
        }
    }
}
