//! Snapshot isolation under chunked copy-on-write storage.
//!
//! The storage migration (PR 3) replaced whole-component `Arc::make_mut`
//! clones with chunk-granular [`CowVec`](htsp::graph::CowVec) /
//! [`CowTable`](htsp::graph::CowTable) copy-on-write. These tests pin
//! [`QueryView`](htsp::graph::QueryView) snapshots *before* a maintenance
//! round and check, across every algorithm in the repository and several
//! randomized rounds, that
//!
//! 1. a pinned view keeps answering exactly on its own (old) graph version
//!    while the maintainer mutates chunks underneath it — no torn reads, no
//!    staleness leaking forward;
//! 2. the freshly published view answers exactly on the new graph;
//! 3. the maintainers really do clone chunks while a snapshot is pinned
//!    (the telemetry in the publication log is non-zero), and the clone
//!    volume is bounded by the component sizes.

use htsp::core::{Pmhl, PmhlConfig, PostMhl, PostMhlConfig};
use htsp::graph::{gen, IndexMaintainer, QuerySet, QueryView, SnapshotPublisher, UpdateGenerator};
use htsp::search::dijkstra_distance;
use htsp::{AlgorithmKind, BuildParams};
use std::sync::Arc;

/// All nine registry algorithms, built with small-test parameters.
fn algorithms(g: &htsp::graph::Graph) -> Vec<Box<dyn IndexMaintainer>> {
    let params = BuildParams::new(4, 2);
    AlgorithmKind::ALL
        .iter()
        .map(|kind| kind.build(g, &params))
        .collect()
}

/// Every answer of `view` must be exact on `view`'s *own* graph snapshot.
fn assert_frozen(view: &Arc<dyn QueryView>, queries: &QuerySet, context: &str) {
    for q in queries {
        let expect = dijkstra_distance(view.graph(), q.source, q.target);
        assert_eq!(
            view.distance(q.source, q.target),
            expect,
            "{context}: {} stage {} diverged from its own graph snapshot on {:?}",
            view.algorithm(),
            view.stage(),
            q
        );
    }
}

/// The property, randomized over rounds: views pinned before (and published
/// during) a maintenance round stay frozen at their graph version while the
/// maintainer mutates chunks, for every algorithm.
#[test]
fn pinned_views_stay_frozen_while_chunks_mutate() {
    let mut g = gen::grid_with_diagonals(11, 11, gen::WeightRange::new(2, 60), 0.15, 91);
    let mut algorithms = algorithms(&g);
    let mut gen_upd = UpdateGenerator::new(17);
    for round in 0..3u64 {
        let queries = QuerySet::random(&g, 30, 500 + round);
        // Pin the final-stage view of every algorithm, plus every per-stage
        // view of the multi-stage indexes, all on the current graph.
        let pins: Vec<Vec<Arc<dyn QueryView>>> = algorithms
            .iter()
            .map(|alg| {
                (0..alg.num_query_stages())
                    .map(|s| alg.view_at_stage(s))
                    .collect()
            })
            .collect();
        // Old-graph ground truth must hold before the batch...
        for views in &pins {
            for view in views {
                assert_frozen(view, &queries, "pre-batch");
            }
        }

        let batch = gen_upd.generate(&g, 20);
        g.apply_batch(&batch);
        for alg in algorithms.iter_mut() {
            let publisher = SnapshotPublisher::new(alg.current_view());
            alg.apply_batch(&g, &batch, &publisher);
            // ...and the newest published snapshot must be exact on the new
            // graph.
            assert_frozen(&publisher.snapshot(), &queries, "post-batch");
        }

        // The pinned views answer on the *old* graph even though the
        // maintainers just mutated (and cloned) the chunks they share.
        for views in &pins {
            for view in views {
                assert_frozen(view, &queries, "pinned across batch");
            }
        }
    }
}

/// The maintainers report real, bounded clone telemetry: pinning a snapshot
/// across a batch forces chunk clones; the deltas reach the publication log;
/// and the volume stays below the component sizes (it would equal them under
/// the old whole-component cloning).
#[test]
fn publication_log_carries_bounded_clone_telemetry() {
    let mut g = gen::grid(12, 12, gen::WeightRange::new(5, 50), 23);
    let mut postmhl = PostMhl::build(&g, PostMhlConfig::default());
    let mut pmhl = Pmhl::build(
        &g,
        PmhlConfig {
            num_partitions: 4,
            num_threads: 2,
            seed: 5,
        },
    );
    let mut gen_upd = UpdateGenerator::new(29);
    let mut post_cloned = 0u64;
    let mut pmhl_cloned = 0u64;
    for _round in 0..2 {
        let batch = gen_upd.generate(&g, 15);
        g.apply_batch(&batch);
        for (maintainer, cloned) in [
            (&mut postmhl as &mut dyn IndexMaintainer, &mut post_cloned),
            (&mut pmhl as &mut dyn IndexMaintainer, &mut pmhl_cloned),
        ] {
            let publisher = SnapshotPublisher::new(maintainer.current_view());
            let pin = maintainer.current_view(); // held across the repair
            maintainer.apply_batch(&g, &batch, &publisher);
            drop(pin);
            let log = publisher.take_log();
            assert!(!log.is_empty());
            let round_bytes: u64 = log.iter().map(|e| e.cow.bytes_cloned).sum();
            let round_chunks: u64 = log.iter().map(|e| e.cow.chunks_cloned).sum();
            assert!(
                round_chunks > 0 && round_bytes > 0,
                "{}: a pinned snapshot across a batch must force chunk clones",
                maintainer.name()
            );
            *cloned += round_bytes;
        }
    }
    // Bounded: chunk-granular clones can round up to at most a few copies
    // of the mutable tables; the old per-stage whole-component clone paid
    // ~1 full copy per stage per round (4-5 stages x 2 rounds here).
    let post_bound = 4 * IndexMaintainer::index_size_bytes(&postmhl) as u64;
    let pmhl_bound = 4 * IndexMaintainer::index_size_bytes(&pmhl) as u64;
    assert!(
        post_cloned < post_bound,
        "PostMHL cloned {post_cloned} bytes over two rounds, bound {post_bound}"
    );
    assert!(
        pmhl_cloned < pmhl_bound,
        "PMHL cloned {pmhl_cloned} bytes over two rounds, bound {pmhl_bound}"
    );
    // And the maintainers' own cumulative counters agree in spirit: they
    // include everything the log saw.
    assert!(postmhl.cow_stats().bytes_cloned >= post_cloned);
    assert!(pmhl.cow_stats().bytes_cloned >= pmhl_cloned);
}

/// An untouched maintainer publishing snapshots clones nothing: replaying an
/// *empty* batch with a pinned snapshot must report zero cloned chunks.
#[test]
fn empty_batches_clone_nothing() {
    let g = gen::grid(10, 10, gen::WeightRange::new(1, 30), 31);
    let mut postmhl = PostMhl::build(&g, PostMhlConfig::default());
    let publisher = SnapshotPublisher::new(postmhl.current_view());
    let pin = postmhl.current_view();
    let empty = htsp::graph::UpdateBatch::new();
    postmhl.apply_batch(&g, &empty, &publisher);
    drop(pin);
    let log = publisher.take_log();
    assert!(
        log.iter().all(|e| e.cow.is_zero()),
        "empty batch cloned chunks"
    );
    assert!(postmhl.cow_stats().is_zero());
}
