//! Determinism of the skewed hot-pair workload: the Zipf sampler behind
//! `WorkloadKind::HotPairs` is pinned, so two streams built from the same
//! `(universe, s, seed, worker)` produce identical query sequences — and a
//! cache driven by that stream produces identical (reproducible) hit-rate
//! telemetry. The query pool derivation matches the engine's
//! (`QuerySet::random(graph, pool, seed ^ 0x51ab)`), so the streams checked
//! here are exactly the streams two same-seed `QueryEngine` runs replay.

use htsp::graph::{gen, Query, QuerySet};
use htsp::throughput::{CacheStats, HotPairStream, WorkloadKind};
use htsp::{CacheConfig, DistanceCache};

const SEED: u64 = 42;

fn engine_pool(seed: u64) -> QuerySet {
    let g = gen::grid(12, 12, gen::WeightRange::new(1, 30), 7);
    // The pool a QueryEngine with this seed would draw from.
    QuerySet::random(&g, 256, seed ^ 0x51ab)
}

/// Replays the per-worker streams of one engine run: `draws` queries per
/// worker, round-robin interleaved (any fixed schedule works — the streams
/// are independent).
fn replay(workload: WorkloadKind, seed: u64, workers: usize, draws: usize) -> Vec<Query> {
    let (zipf_s, universe) = match workload {
        WorkloadKind::HotPairs { zipf_s, universe } => (zipf_s, universe),
        _ => unreachable!("hot-pair replay"),
    };
    let pool = engine_pool(seed);
    let pool = pool.as_slice();
    let mut streams: Vec<HotPairStream> = (0..workers)
        .map(|w| HotPairStream::new(universe.clamp(1, pool.len()), zipf_s, seed, w))
        .collect();
    (0..workers * draws)
        .map(|i| streams[i % workers].next_query(pool))
        .collect()
}

#[test]
fn two_same_seed_runs_produce_identical_query_streams() {
    let workload = WorkloadKind::HotPairs {
        zipf_s: 1.2,
        universe: 128,
    };
    let a = replay(workload, SEED, 3, 2000);
    let b = replay(workload, SEED, 3, 2000);
    assert_eq!(a, b, "same seed must replay the same hot-pair stream");
    // A different seed (or worker count) decorrelates.
    let c = replay(workload, SEED + 1, 3, 2000);
    assert_ne!(a, c, "different seeds must not collide");
    // Workers are decorrelated substreams of one seed.
    let w0: Vec<Query> = {
        let pool = engine_pool(SEED);
        let mut s = HotPairStream::new(128, 1.2, SEED, 0);
        (0..500).map(|_| s.next_query(pool.as_slice())).collect()
    };
    let w1: Vec<Query> = {
        let pool = engine_pool(SEED);
        let mut s = HotPairStream::new(128, 1.2, SEED, 1);
        (0..500).map(|_| s.next_query(pool.as_slice())).collect()
    };
    assert_ne!(w0, w1, "workers must draw decorrelated substreams");
}

/// Drives a fresh cache with the replayed stream the way a serving loop
/// would (lookup, fill on miss) and returns the telemetry.
fn drive_cache(stream: &[Query], capacity: usize) -> CacheStats {
    let cache = DistanceCache::new(CacheConfig {
        capacity,
        shards: 4,
    });
    for q in stream {
        if cache.get(q.source, q.target, 3).is_none() {
            cache.insert(q.source, q.target, 3, htsp::graph::Dist(17));
        }
    }
    cache.stats()
}

#[test]
fn hit_rate_telemetry_is_reproducible() {
    let workload = WorkloadKind::HotPairs {
        zipf_s: 1.1,
        universe: 128,
    };
    let stream = replay(workload, SEED, 2, 3000);
    let a = drive_cache(&stream, 32);
    let b = drive_cache(&stream, 32);
    assert_eq!(a, b, "same stream, same cache → same telemetry");
    assert!(a.hits > 0);
    assert_eq!(a.lookups(), stream.len() as u64);
}

#[test]
fn hit_rate_grows_with_skew() {
    // The acceptance direction of bench-pr5, pinned deterministically: at a
    // capacity below the universe, more skew → more of the mass fits → a
    // higher hit rate.
    let mut last = -1.0f64;
    for zipf_s in [0.0, 0.8, 1.4] {
        let stream = replay(
            WorkloadKind::HotPairs {
                zipf_s,
                universe: 192,
            },
            SEED,
            2,
            4000,
        );
        let rate = drive_cache(&stream, 24).hit_rate();
        assert!(
            rate > last,
            "hit rate must grow with skew: s={zipf_s} gave {rate} after {last}"
        );
        last = rate;
    }
}
