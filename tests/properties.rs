//! Property-based tests over the core invariants, spanning several crates:
//!
//! * index answers equal Dijkstra on arbitrary generated road networks and
//!   arbitrary update batches (no staleness, no drift);
//! * distances are symmetric and satisfy the triangle inequality;
//! * the tree decomposition and partitioning invariants hold for arbitrary
//!   generator parameters.

use htsp::core::{PostMhl, PostMhlConfig};
use htsp::graph::{gen, DynamicSpIndex, Graph, QuerySet, UpdateGenerator, VertexId};
use htsp::partition::{partition_region_growing, td_partition, TdPartitionConfig};
use htsp::search::{bidijkstra_distance, dijkstra_distance};
use htsp::td::TreeDecomposition;
use proptest::prelude::*;

/// Strategy: a connected road-like graph of modest size.
fn road_network() -> impl Strategy<Value = Graph> {
    (4usize..9, 4usize..9, 1u64..1000, 1u32..50).prop_map(|(w, h, seed, maxw)| {
        gen::grid_with_diagonals(w, h, gen::WeightRange::new(1, maxw.max(2)), 0.2, seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn bidijkstra_matches_dijkstra(g in road_network(), seed in 0u64..1000) {
        let qs = QuerySet::random(&g, 10, seed);
        for q in &qs {
            prop_assert_eq!(
                bidijkstra_distance(&g, q.source, q.target),
                dijkstra_distance(&g, q.source, q.target)
            );
        }
    }

    #[test]
    fn distances_are_symmetric_and_triangular(g in road_network(), seed in 0u64..1000) {
        let qs = QuerySet::random(&g, 6, seed);
        for q in &qs {
            let d_st = dijkstra_distance(&g, q.source, q.target);
            let d_ts = dijkstra_distance(&g, q.target, q.source);
            prop_assert_eq!(d_st, d_ts);
            // Triangle inequality through an arbitrary intermediate vertex.
            let mid = VertexId((q.source.0 + q.target.0) / 2);
            let via = dijkstra_distance(&g, q.source, mid)
                .saturating_add(dijkstra_distance(&g, mid, q.target));
            prop_assert!(d_st <= via);
        }
    }

    #[test]
    fn h2h_is_exact_on_arbitrary_networks(g in road_network(), seed in 0u64..1000) {
        let h2h = htsp::td::H2HIndex::build(&g);
        let qs = QuerySet::random(&g, 10, seed);
        for q in &qs {
            prop_assert_eq!(h2h.distance(q.source, q.target), dijkstra_distance(&g, q.source, q.target));
        }
    }

    #[test]
    fn postmhl_survives_arbitrary_update_batches(
        g in road_network(),
        volume in 1usize..40,
        seed in 0u64..1000,
    ) {
        let mut graph = g;
        let mut idx = PostMhl::build(&graph, PostMhlConfig::default());
        let mut gen_upd = UpdateGenerator::new(seed);
        let batch = gen_upd.generate(&graph, volume);
        graph.apply_batch(&batch);
        idx.apply_batch(&graph, &batch);
        let qs = QuerySet::random(&graph, 10, seed ^ 0xff);
        for q in &qs {
            prop_assert_eq!(
                idx.distance(&graph, q.source, q.target),
                dijkstra_distance(&graph, q.source, q.target)
            );
        }
    }

    #[test]
    fn tree_decomposition_is_valid_for_arbitrary_networks(g in road_network()) {
        let td = TreeDecomposition::build(&g);
        prop_assert!(td.validate(&g).is_ok());
        prop_assert!(td.height() >= 1);
    }

    #[test]
    fn partitions_cover_all_vertices(g in road_network(), k in 2usize..8, seed in 0u64..100) {
        let pr = partition_region_growing(&g, k, seed);
        prop_assert!(pr.validate(&g).is_ok());
        let covered: usize = (0..pr.num_partitions()).map(|i| pr.vertices(i).len()).sum();
        prop_assert_eq!(covered, g.num_vertices());
    }

    #[test]
    fn td_partitioning_respects_bandwidth(g in road_network(), tau in 3usize..20) {
        let td = TreeDecomposition::build(&g);
        let cfg = TdPartitionConfig { bandwidth: tau, expected_partitions: 8, beta_lower: 0.1, beta_upper: 2.0 };
        let tp = td_partition(&td, &cfg);
        for i in 0..tp.num_partitions() {
            prop_assert!(tp.boundary(i).len() <= tau);
        }
        let covered: usize = (0..tp.num_partitions()).map(|i| tp.vertices(i).len()).sum();
        prop_assert_eq!(covered + tp.overlay_vertices().len(), g.num_vertices());
    }
}
