//! Property-based tests over the core invariants, spanning several crates:
//!
//! * index answers equal Dijkstra on arbitrary generated road networks and
//!   arbitrary update batches (no staleness, no drift);
//! * distances are symmetric and satisfy the triangle inequality;
//! * the tree decomposition and partitioning invariants hold for arbitrary
//!   generator parameters.
//!
//! The cases are drawn from a seeded generator (a hand-rolled stand-in for
//! `proptest`, which is unavailable offline): each test replays `CASES`
//! pseudo-random parameter tuples and reports the failing tuple on panic.

use htsp::core::{PostMhl, PostMhlConfig};
use htsp::graph::{
    gen, Graph, IndexMaintainer, QuerySet, SnapshotPublisher, UpdateGenerator, VertexId,
};
use htsp::partition::{partition_region_growing, td_partition, TdPartitionConfig};
use htsp::search::{bidijkstra_distance, dijkstra_distance};
use htsp::td::TreeDecomposition;

const CASES: u64 = 24;

/// Cheap deterministic parameter stream (SplitMix64).
struct Params(u64);

impl Params {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[lo, hi)`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }
}

/// A connected road-like graph of modest size plus the tuple that made it.
fn road_network(p: &mut Params) -> (Graph, String) {
    let w = p.range(4, 9) as usize;
    let h = p.range(4, 9) as usize;
    let seed = p.range(1, 1000);
    let maxw = p.range(2, 50) as u32;
    let g = gen::grid_with_diagonals(w, h, gen::WeightRange::new(1, maxw), 0.2, seed);
    (g, format!("w={w} h={h} seed={seed} maxw={maxw}"))
}

#[test]
fn bidijkstra_matches_dijkstra() {
    let mut p = Params(1);
    for case in 0..CASES {
        let (g, desc) = road_network(&mut p);
        let seed = p.range(0, 1000);
        let qs = QuerySet::random(&g, 10, seed);
        for q in &qs {
            assert_eq!(
                bidijkstra_distance(&g, q.source, q.target),
                dijkstra_distance(&g, q.source, q.target),
                "case {case} ({desc}, qseed={seed}): mismatch for {q:?}"
            );
        }
    }
}

#[test]
fn distances_are_symmetric_and_triangular() {
    let mut p = Params(2);
    for case in 0..CASES {
        let (g, desc) = road_network(&mut p);
        let seed = p.range(0, 1000);
        let qs = QuerySet::random(&g, 6, seed);
        for q in &qs {
            let d_st = dijkstra_distance(&g, q.source, q.target);
            let d_ts = dijkstra_distance(&g, q.target, q.source);
            assert_eq!(d_st, d_ts, "case {case} ({desc}): asymmetric distance");
            // Triangle inequality through an arbitrary intermediate vertex.
            let mid = VertexId((q.source.0 + q.target.0) / 2);
            let via = dijkstra_distance(&g, q.source, mid)
                .saturating_add(dijkstra_distance(&g, mid, q.target));
            assert!(
                d_st <= via,
                "case {case} ({desc}): triangle inequality violated for {q:?}"
            );
        }
    }
}

#[test]
fn h2h_is_exact_on_arbitrary_networks() {
    let mut p = Params(3);
    for case in 0..CASES {
        let (g, desc) = road_network(&mut p);
        let seed = p.range(0, 1000);
        let h2h = htsp::td::H2HIndex::build(&g);
        let qs = QuerySet::random(&g, 10, seed);
        for q in &qs {
            assert_eq!(
                h2h.distance(q.source, q.target),
                dijkstra_distance(&g, q.source, q.target),
                "case {case} ({desc}, qseed={seed}): H2H mismatch for {q:?}"
            );
        }
    }
}

#[test]
fn postmhl_survives_arbitrary_update_batches() {
    let mut p = Params(4);
    for case in 0..CASES {
        let (g, desc) = road_network(&mut p);
        let volume = p.range(1, 40) as usize;
        let seed = p.range(0, 1000);
        let mut graph = g;
        let mut idx = PostMhl::build(&graph, PostMhlConfig::default());
        let mut gen_upd = UpdateGenerator::new(seed);
        let batch = gen_upd.generate(&graph, volume);
        graph.apply_batch(&batch);
        let publisher = SnapshotPublisher::new(idx.current_view());
        idx.apply_batch(&graph, &batch, &publisher);
        let view = publisher.snapshot();
        let mut session = view.session();
        let qs = QuerySet::random(&graph, 10, seed ^ 0xff);
        for q in &qs {
            assert_eq!(
                session.distance(q.source, q.target),
                dijkstra_distance(&graph, q.source, q.target),
                "case {case} ({desc}, volume={volume}, seed={seed}): stale answer for {q:?}"
            );
        }
    }
}

#[test]
fn tree_decomposition_is_valid_for_arbitrary_networks() {
    let mut p = Params(5);
    for case in 0..CASES {
        let (g, desc) = road_network(&mut p);
        let td = TreeDecomposition::build(&g);
        assert!(td.validate(&g).is_ok(), "case {case} ({desc}): invalid TD");
        assert!(td.height() >= 1, "case {case} ({desc}): degenerate TD");
    }
}

#[test]
fn partitions_cover_all_vertices() {
    let mut p = Params(6);
    for case in 0..CASES {
        let (g, desc) = road_network(&mut p);
        let k = p.range(2, 8) as usize;
        let seed = p.range(0, 100);
        let pr = partition_region_growing(&g, k, seed);
        assert!(pr.validate(&g).is_ok(), "case {case} ({desc}, k={k})");
        let covered: usize = (0..pr.num_partitions()).map(|i| pr.vertices(i).len()).sum();
        assert_eq!(covered, g.num_vertices(), "case {case} ({desc}, k={k})");
    }
}

#[test]
fn td_partitioning_respects_bandwidth() {
    let mut p = Params(7);
    for case in 0..CASES {
        let (g, desc) = road_network(&mut p);
        let tau = p.range(3, 20) as usize;
        let td = TreeDecomposition::build(&g);
        let cfg = TdPartitionConfig {
            bandwidth: tau,
            expected_partitions: 8,
            beta_lower: 0.1,
            beta_upper: 2.0,
        };
        let tp = td_partition(&td, &cfg);
        for i in 0..tp.num_partitions() {
            assert!(
                tp.boundary(i).len() <= tau,
                "case {case} ({desc}, tau={tau}): boundary exceeds bandwidth"
            );
        }
        let covered: usize = (0..tp.num_partitions()).map(|i| tp.vertices(i).len()).sum();
        assert_eq!(
            covered + tp.overlay_vertices().len(),
            g.num_vertices(),
            "case {case} ({desc}, tau={tau}): vertices not covered"
        );
    }
}
