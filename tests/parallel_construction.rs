//! Construction-equivalence suite for the parallel-construction subsystem:
//! every algorithm of the [`AlgorithmKind`] registry must build the *same
//! index* at every thread count.
//!
//! The contract under test (see `htsp::graph::par`): the worker pool only
//! changes how many construction tasks run concurrently, never which tasks
//! exist or how their outputs combine. Concretely,
//!
//! * kinds with a native snapshot codec (DCH, TOAIN, DH2H, MHL) must produce
//!   **bit-identical** `snapshot_state` bytes at 1, 2, and 8 threads;
//! * every kind's sampled answers must equal the sequential build's answers
//!   and Dijkstra ground truth;
//! * the equivalence must survive post-build drift: applying the same update
//!   batches to indexes built at different thread counts keeps them in
//!   agreement (repair starts from identical state, so it stays identical).

use htsp::graph::{gen, IndexMaintainer, QuerySet, SnapshotPublisher, UpdateGenerator};
use htsp::search::dijkstra_distance;
use htsp::{AlgorithmKind, BuildParams};

/// Thread counts the suite compares: sequential, small, oversubscribed.
const THREADS: [usize; 3] = [1, 2, 8];

/// The kinds whose maintainers serialize a native index state; for these the
/// suite demands byte equality, not just answer equality.
const NATIVE_CODEC: [AlgorithmKind; 4] = [
    AlgorithmKind::Dch,
    AlgorithmKind::Toain,
    AlgorithmKind::Dh2h,
    AlgorithmKind::Mhl,
];

fn params_with_threads(threads: usize) -> BuildParams {
    BuildParams {
        num_threads: threads,
        ..BuildParams::new(4, 1)
    }
}

#[test]
fn all_kinds_build_identically_at_every_thread_count() {
    let g = gen::random_geometric(200, 4, gen::WeightRange::new(2, 60), 91);
    let queries = QuerySet::random(&g, 35, 17);
    for kind in AlgorithmKind::ALL {
        let sequential = kind.build(&g, &params_with_threads(1));
        let seq_state = sequential.snapshot_state();
        if NATIVE_CODEC.contains(&kind) {
            assert!(
                seq_state.is_some(),
                "{kind} is expected to carry a native snapshot codec"
            );
        }
        let seq_view = sequential.current_view();
        for q in &queries {
            assert_eq!(
                seq_view.distance(q.source, q.target),
                dijkstra_distance(&g, q.source, q.target),
                "{kind} sequential build wrong for {q:?}"
            );
        }
        for threads in [2, 8] {
            let built = kind.build(&g, &params_with_threads(threads));
            assert_eq!(
                built.snapshot_state(),
                seq_state,
                "{kind} snapshot bytes diverge at {threads} threads"
            );
            let view = built.current_view();
            for q in &queries {
                assert_eq!(
                    view.distance(q.source, q.target),
                    seq_view.distance(q.source, q.target),
                    "{kind} answers diverge at {threads} threads for {q:?}"
                );
            }
        }
    }
}

#[test]
fn drift_updates_preserve_agreement_across_thread_counts() {
    let g = gen::grid_with_diagonals(11, 11, gen::WeightRange::new(2, 50), 0.2, 33);
    // One build per thread count, all fed the identical drift stream.
    for kind in AlgorithmKind::ALL {
        let mut builds: Vec<Box<dyn IndexMaintainer>> = THREADS
            .iter()
            .map(|&t| kind.build(&g, &params_with_threads(t)))
            .collect();
        let mut gen_upd = UpdateGenerator::new(57);
        let mut working = g.clone();
        for round in 0..2u64 {
            let batch = gen_upd.generate(&working, 18);
            working.apply_batch(&batch);
            for built in builds.iter_mut() {
                let publisher = SnapshotPublisher::new(built.current_view());
                let timeline = built.apply_batch(&working, &batch, &publisher);
                assert!(!timeline.stages.is_empty());
            }
            let queries = QuerySet::random(&working, 25, 400 + round);
            let reference = builds[0].current_view();
            for q in &queries {
                let expect = dijkstra_distance(&working, q.source, q.target);
                assert_eq!(
                    reference.distance(q.source, q.target),
                    expect,
                    "{kind} sequential build drifted for {q:?}"
                );
                for (built, &threads) in builds.iter().skip(1).zip(&THREADS[1..]) {
                    assert_eq!(
                        built.current_view().distance(q.source, q.target),
                        expect,
                        "{kind} at {threads} threads disagrees after round {round} for {q:?}"
                    );
                }
            }
            // Repair of bit-identical native state is deterministic, so the
            // serialized states must still match after every round.
            let reference_state = builds[0].snapshot_state();
            for built in builds.iter().skip(1) {
                assert_eq!(
                    built.snapshot_state(),
                    reference_state,
                    "{kind} native state diverges after drift round {round}"
                );
            }
        }
    }
}
