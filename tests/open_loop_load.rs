//! End-to-end tests of the open-loop load subsystem: the deterministic
//! generator drives a real `DistanceService` (single-server and
//! fleet-backed), every answer is exact, the books balance, and the SLO
//! verdict machinery sees the measured tail.

use htsp::graph::{gen, Query, QuerySet};
use htsp::search::dijkstra_distance;
use htsp::throughput::{
    loadgen, AdmissionPolicy, AlgorithmKind, FleetConfig, LoadProfile, OpenLoopStream, QueryBatch,
    RequestClass, RequestMix, ShardedFleet, SloTarget,
};
use htsp::{RoadNetworkServer, ServerBuilder};
use std::time::Duration;

fn mixed_profile(rate: f64, duration: Duration) -> LoadProfile {
    LoadProfile::poisson(rate, duration, SloTarget::p95(Duration::from_millis(250)))
        .with_clients(2)
        .with_seed(99)
        .with_mix(RequestMix::new(vec![
            (RequestClass::PointToPoint { bundle: 2 }, 4.0),
            (RequestClass::OneToMany { fanout: 3 }, 1.0),
            (RequestClass::Matrix { side: 2 }, 1.0),
            (
                RequestClass::HotPairs {
                    universe: 8,
                    zipf_s: 1.0,
                },
                2.0,
            ),
        ]))
}

fn start_server(g: &htsp::graph::Graph, policy: AdmissionPolicy) -> RoadNetworkServer {
    ServerBuilder::default()
        .algorithm(AlgorithmKind::Dch)
        .query_workers(2)
        .admission(policy)
        .start(g)
}

#[test]
fn open_loop_run_answers_exactly_and_balances_the_books() {
    let g = gen::grid(8, 8, gen::WeightRange::new(1, 20), 5);
    let pool: Vec<Query> = QuerySet::random(&g, 32, 7).as_slice().to_vec();
    let server = start_server(&g, AdmissionPolicy::Block);
    let service = server.query_service().expect("query workers enabled");

    let profile = mixed_profile(400.0, Duration::from_millis(300));
    let report = loadgen::run_open_loop(service, &profile, &pool);

    assert!(report.offered > 0, "a 400 req/s run must offer something");
    assert_eq!(report.answered, report.offered, "Block answers everything");
    assert_eq!(report.shed + report.expired + report.abandoned, 0);
    assert_eq!(report.latency.count(), report.answered);
    assert_eq!(report.per_class.len(), 4);
    let per_class_offered: u64 = report.per_class.iter().map(|c| c.offered).sum();
    assert_eq!(per_class_offered, report.offered);
    assert!(
        report.answered_pairs >= report.answered,
        "batches hold >= 1 pair"
    );
    assert!(!report.latency.is_empty());
    assert!(report.max_queue_depth >= 1);
    // The verdict is wired to the measured histogram: its achieved p95
    // matches what the histogram reports.
    let p95 = report.latency.quantile(0.95);
    let check = report
        .verdict
        .checks
        .iter()
        .find(|c| c.quantile == 0.95)
        .expect("profile carries a p95 target");
    assert_eq!(check.achieved, p95);
}

#[test]
fn open_loop_answers_are_exact_against_dijkstra() {
    // Replay the same stream the driver would generate and check every
    // batch shape answers exactly: submit each batch synchronously and
    // compare to Dijkstra on the (static) graph.
    let g = gen::grid(7, 7, gen::WeightRange::new(1, 15), 9);
    let pool: Vec<Query> = QuerySet::random(&g, 24, 3).as_slice().to_vec();
    let server = start_server(&g, AdmissionPolicy::Block);
    let service = server.query_service().expect("query workers enabled");

    let profile = mixed_profile(1000.0, Duration::from_millis(50));
    let mut stream = OpenLoopStream::new(
        profile.arrivals,
        profile.mix.clone(),
        &pool,
        profile.seed,
        0,
    );
    for _ in 0..40 {
        let req = stream.next_request();
        let expected: Vec<_> = match &req.batch {
            QueryBatch::PointToPoint(qs) => qs
                .iter()
                .map(|q| dijkstra_distance(&g, q.source, q.target))
                .collect(),
            QueryBatch::OneToMany { source, targets } => targets
                .iter()
                .map(|&t| dijkstra_distance(&g, *source, t))
                .collect(),
            QueryBatch::Matrix { sources, targets } => sources
                .iter()
                .flat_map(|&s| targets.iter().map(move |&t| (s, t)))
                .map(|(s, t)| dijkstra_distance(&g, s, t))
                .collect(),
        };
        let answer = service.answer(req.batch);
        assert_eq!(answer.distances, expected, "class {:?}", req.class);
    }
}

#[test]
fn fleet_backed_service_serves_open_loop_traffic() {
    let g = gen::grid(10, 10, gen::WeightRange::new(1, 30), 11);
    let pool: Vec<Query> = QuerySet::random(&g, 24, 13).as_slice().to_vec();
    let fleet = ShardedFleet::start(&g, FleetConfig::new(4, AlgorithmKind::Dch));
    let service = fleet.start_query_service(2, AdmissionPolicy::Shed { max_depth: 256 });

    let profile = LoadProfile::poisson(
        300.0,
        Duration::from_millis(250),
        SloTarget::p95(Duration::from_millis(500)),
    )
    .with_clients(2)
    .with_seed(5);
    let report = loadgen::run_open_loop(&service, &profile, &pool);
    assert!(report.offered > 0);
    assert_eq!(report.answered + report.shed, report.offered);
    assert!(report.answered > 0, "fleet service must answer traffic");

    // Fleet answers are exact: spot-check synchronously.
    for q in &pool[..8] {
        let answer = service.answer(QueryBatch::PointToPoint(vec![*q]));
        assert_eq!(
            answer.distances,
            vec![dijkstra_distance(&g, q.source, q.target)]
        );
    }
    let stats = service.stats();
    assert_eq!(stats.answered, report.answered + 8);
    service.shutdown();
    fleet.shutdown();
}

#[test]
fn bounded_router_ingest_sheds_and_reports_depth() {
    let g = gen::grid(8, 8, gen::WeightRange::new(1, 20), 3);
    // Manual coalescing + a tiny bound: updates pile up in the ingest
    // queue until try_submit sheds.
    let config = FleetConfig::new(2, AlgorithmKind::Dch)
        .with_coalesce(htsp::CoalescePolicy::manual())
        .with_ingest_bound(4);
    let fleet = ShardedFleet::start(&g, config);

    let mut gen_updates = htsp::graph::UpdateGenerator::new(41);
    let updates = gen_updates.generate(&g, 12);
    let mut accepted = 0usize;
    let mut shed = 0usize;
    for &u in updates.as_slice() {
        match fleet.try_submit(u) {
            Some(_) => accepted += 1,
            None => shed += 1,
        }
    }
    assert_eq!(accepted, 4, "exactly the bound is admitted");
    assert_eq!(shed, 8, "the rest is shed");

    let report = fleet.report();
    assert_eq!(report.ingest_bound, 4);
    assert_eq!(report.updates_shed, 8);
    assert!(report.max_ingest_depth >= 4);

    // Draining via a barrier frees the queue, after which blocking submit
    // admits again without waiting.
    fleet.flush().wait_applied();
    assert_eq!(fleet.report().ingest_depth, 0);
    let more = gen_updates.generate(&g, 2);
    let tickets: Vec<_> = more.as_slice().iter().map(|&u| fleet.submit(u)).collect();
    fleet.flush().wait_applied();
    for t in tickets {
        t.wait_applied();
    }
    fleet.shutdown();
}
