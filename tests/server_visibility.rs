//! Read-your-writes through the `RoadNetworkServer` facade, for all nine
//! registry algorithms: updates submitted through the `UpdateFeed` while
//! query threads keep serving must become visible exactly when their
//! tickets say so, and post-visibility answers must match Dijkstra on the
//! mutated graph.
//!
//! Also covered here: queries never block on maintenance (a session pinned
//! before the ingest keeps answering on its frozen snapshot — the
//! cow_snapshot_isolation guarantee, restated under the server), and the
//! coalescing behaviour surfaced to tickets (one feed batch = one shared
//! outcome).

use htsp::graph::{gen, EdgeUpdate, Graph, QuerySet, UpdateBatch, UpdateGenerator};
use htsp::search::dijkstra_distance;
use htsp::throughput::QueryBatch;
use htsp::{AlgorithmKind, BuildParams, CoalescePolicy, RoadNetworkServer};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

fn road(seed: u64) -> Graph {
    gen::grid_with_diagonals(10, 10, gen::WeightRange::new(2, 60), 0.15, seed)
}

/// Generates `volume` updates consistent with `g` and applies them locally,
/// returning the batch (the server applies the same updates through its
/// feed).
fn updates(g: &mut Graph, seed: u64, volume: usize) -> UpdateBatch {
    let batch = UpdateGenerator::new(seed).generate(g, volume);
    g.apply_batch(&batch);
    batch
}

#[test]
fn all_nine_algorithms_give_read_your_writes_under_concurrent_queries() {
    for kind in AlgorithmKind::ALL {
        let mut g = road(77);
        let server = RoadNetworkServer::builder()
            .algorithm(kind)
            .build_params(BuildParams::new(4, 2))
            .coalesce(CoalescePolicy::by_size(8))
            .query_workers(2)
            .start(&g);

        let queries = QuerySet::random(&g, 15, 42);
        let stop = AtomicBool::new(false);
        // If any assertion in the scope body unwinds, the raced query
        // threads must still be told to stop — otherwise thread::scope
        // joins threads that spin forever and the test hangs instead of
        // failing.
        struct StopGuard<'a>(&'a AtomicBool);
        impl Drop for StopGuard<'_> {
            fn drop(&mut self) {
                self.0.store(true, Ordering::Relaxed);
            }
        }
        std::thread::scope(|scope| {
            let _stop_on_unwind = StopGuard(&stop);
            // Query threads hammer the published snapshots (and the batched
            // service front-end) for the whole ingest; they must never
            // observe a half-repaired index — every answer is checked
            // against Dijkstra on the answering snapshot's own graph.
            let raced: Vec<_> = (0..2)
                .map(|_| {
                    let stop = &stop;
                    let queries = &queries;
                    let server = &server;
                    scope.spawn(move || {
                        let mut answered = 0u64;
                        while !stop.load(Ordering::Relaxed) {
                            let view = server.snapshot();
                            let mut session = view.session();
                            for q in queries {
                                assert_eq!(
                                    session.distance(q.source, q.target),
                                    dijkstra_distance(view.graph(), q.source, q.target),
                                    "{}: torn read while ingesting",
                                    view.algorithm()
                                );
                                answered += 1;
                            }
                        }
                        answered
                    })
                })
                .collect();

            for round in 0..2u64 {
                // Exactly max_batch updates per round: the size trigger
                // flushes without an explicit boundary.
                let batch = updates(&mut g, 100 + round, 8);
                let tickets = server.feed().submit_all(batch.as_slice().iter().copied());
                assert_eq!(tickets.len(), 8);
                // Every ticket resolves, and read-your-writes holds at
                // wait_visible: the newest snapshot contains each update.
                for (ticket, update) in tickets.iter().zip(batch.as_slice()) {
                    let vis = ticket.wait_visible();
                    assert!(vis.version >= 1);
                    let view = server.snapshot();
                    assert_eq!(
                        view.graph().edge_weight(update.edge),
                        update.new_weight,
                        "{kind}: update not visible after wait_visible()"
                    );
                }
                let outcome = tickets[0].wait_applied();
                assert_eq!(outcome.batch_len, 8, "{kind}: batch was split");
                for t in &tickets {
                    assert_eq!(t.wait_applied().batch_seq, outcome.batch_seq);
                }
                // Post-visibility answers match Dijkstra on the mutated
                // graph — both directly and through the query service.
                let view = server.snapshot();
                let answer = server
                    .submit_queries(QueryBatch::PointToPoint(queries.as_slice().to_vec()))
                    .wait();
                for (q, &d) in queries.iter().zip(&answer.distances) {
                    let expect = dijkstra_distance(&g, q.source, q.target);
                    assert_eq!(
                        view.distance(q.source, q.target),
                        expect,
                        "{kind}: stale answer after visibility"
                    );
                    assert_eq!(d, expect, "{kind}: service answer stale after visibility");
                }
            }
            stop.store(true, Ordering::Relaxed);
            for handle in raced {
                assert!(
                    handle.join().expect("query thread panicked") > 0,
                    "{kind}: query thread never answered — blocked on maintenance?"
                );
            }
        });
        server.shutdown();
    }
}

#[test]
fn pinned_sessions_survive_ingest_unchanged() {
    // The cow_snapshot_isolation guarantee restated on the server: a session
    // pinned before updates stream in keeps answering on its frozen graph.
    let mut g = road(31);
    let server = RoadNetworkServer::builder()
        .algorithm(AlgorithmKind::PostMhl)
        .build_params(BuildParams::new(4, 2))
        .coalesce(CoalescePolicy::by_size(4))
        .start(&g);
    let pinned = server.snapshot();
    let frozen = pinned.graph().clone();
    let queries = QuerySet::random(&g, 20, 9);

    let batch = updates(&mut g, 5, 4);
    let tickets = server.feed().submit_all(batch.as_slice().iter().copied());
    tickets.last().expect("tickets").wait_applied();

    // The new snapshot answers on the new graph...
    let fresh = server.snapshot();
    for q in &queries {
        assert_eq!(
            fresh.distance(q.source, q.target),
            dijkstra_distance(&g, q.source, q.target)
        );
    }
    // ...while the pinned view still answers on the old one.
    let mut session = pinned.session();
    for q in &queries {
        assert_eq!(
            session.distance(q.source, q.target),
            dijkstra_distance(&frozen, q.source, q.target),
            "pinned session observed the ingest"
        );
    }
    server.shutdown();
}

#[test]
fn visibility_precedes_full_application_for_multi_stage_indexes() {
    // wait_visible() must fire at the *first* staged publication, not at
    // the end of the repair: for a multi-stage index the visible version of
    // a ticket is strictly older than the final version of its outcome.
    let mut g = road(63);
    let server = RoadNetworkServer::builder()
        .algorithm(AlgorithmKind::PostMhl)
        .build_params(BuildParams::new(4, 2))
        .coalesce(CoalescePolicy::manual())
        .start(&g);
    let batch = updates(&mut g, 17, 30);
    let tickets = server.feed().submit_all(batch.as_slice().iter().copied());
    let barrier = server.feed().flush();
    let vis = tickets[0].wait_visible();
    let outcome = barrier.wait_applied();
    assert_eq!(vis.version, outcome.first_version);
    assert!(
        outcome.final_version > outcome.first_version,
        "multi-stage repair must publish more than one stage"
    );
    assert!(outcome.timeline.stages.len() > 1);
    assert_eq!(outcome.final_version, server.publisher().version());
    server.shutdown();

    // Sanity: a single EdgeUpdate submitted alone still resolves under a
    // delay policy (Δt-triggered flush).
    let g2 = road(64);
    let server = RoadNetworkServer::builder()
        .algorithm(AlgorithmKind::Dch)
        .coalesce(CoalescePolicy::by_delay(Duration::from_millis(10)))
        .start(&g2);
    let e = htsp::graph::EdgeId::from_index(5);
    let w = g2.edge_weight(e);
    let ticket = server.submit(EdgeUpdate::new(e, w, w + 9));
    assert_eq!(ticket.wait_applied().batch_len, 1);
    assert_eq!(server.snapshot().graph().edge_weight(e), w + 9);
    server.shutdown();
}
