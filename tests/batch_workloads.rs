//! Cross-algorithm integration test for the session batch workloads: for
//! every algorithm in the repository, `one_to_many` and `matrix` answers
//! must equal fresh Dijkstra runs on the answering view's *own* graph
//! snapshot — before updates, after updates, and on every per-stage
//! (mid-maintenance) snapshot of the multi-stage indexes.
//!
//! This pins down the two ways a batch implementation can go wrong: sharing
//! the wrong state across targets (e.g. a stale forward ball after an
//! update) and disagreeing with the per-call `distance` path.

use htsp::baselines::{BiDijkstraBaseline, DchBaseline, Dh2hBaseline, ToainBaseline};
use htsp::core::{Mhl, Pmhl, PmhlConfig, PostMhl, PostMhlConfig};
use htsp::graph::{gen, IndexMaintainer, QuerySet, SnapshotPublisher, UpdateGenerator, VertexId};
use htsp::search::dijkstra_distance;

fn nine_algorithms(g: &htsp::graph::Graph) -> Vec<Box<dyn IndexMaintainer>> {
    vec![
        Box::new(BiDijkstraBaseline::new(g)),
        Box::new(DchBaseline::build(g)),
        Box::new(Dh2hBaseline::build(g)),
        Box::new(ToainBaseline::build(g, 64)),
        Box::new(htsp::psp::NChP::build(g, 4, 1)),
        Box::new(htsp::psp::PTdP::build(g, 4, 1)),
        Box::new(Mhl::build(g)),
        Box::new(Pmhl::build(
            g,
            PmhlConfig {
                num_partitions: 4,
                num_threads: 2,
                seed: 3,
            },
        )),
        Box::new(PostMhl::build(g, PostMhlConfig::default())),
    ]
}

/// Checks every query stage of `alg`: the per-stage views answer with the
/// machinery that is live mid-maintenance, so verifying batches on each of
/// them covers the mid-repair snapshots workers would observe.
fn check_batches_at_every_stage(alg: &dyn IndexMaintainer, seed: u64) {
    for stage in 0..alg.num_query_stages() {
        let view = alg.view_at_stage(stage);
        let graph = view.graph();
        let n = graph.num_vertices() as u32;
        let qs = QuerySet::random(graph, 8, seed + stage as u64);
        let sources: Vec<VertexId> = qs.iter().map(|q| q.source).collect();
        let targets: Vec<VertexId> = qs
            .iter()
            .map(|q| q.target)
            // Exercise the edge cases: a duplicate target and a target that
            // collides with a source.
            .chain([qs.as_slice()[0].target, sources[0]])
            .chain([VertexId(0), VertexId(n - 1)])
            .collect();

        let mut session = view.session();
        for &s in &sources {
            let fan = session.one_to_many(s, &targets);
            assert_eq!(fan.len(), targets.len());
            for (&t, &d) in targets.iter().zip(&fan) {
                assert_eq!(
                    d,
                    dijkstra_distance(graph, s, t),
                    "{} stage {stage}: one_to_many({s}, {t}) diverged",
                    alg.name()
                );
            }
        }
        let m = session.matrix(&sources, &targets);
        assert_eq!(m.len(), sources.len());
        for (&s, row) in sources.iter().zip(&m) {
            for (&t, &d) in targets.iter().zip(row) {
                assert_eq!(
                    d,
                    dijkstra_distance(graph, s, t),
                    "{} stage {stage}: matrix({s}, {t}) diverged",
                    alg.name()
                );
            }
        }
        // The batch paths agree with the per-call path on the same session.
        let q = &qs.as_slice()[0];
        assert_eq!(
            session.distance(q.source, q.target),
            view.distance(q.source, q.target),
            "{} stage {stage}: session and view disagree",
            alg.name()
        );
    }
}

#[test]
fn one_to_many_and_matrix_match_dijkstra_for_all_nine_algorithms() {
    let mut g = gen::grid_with_diagonals(10, 10, gen::WeightRange::new(2, 50), 0.2, 41);
    let mut algorithms = nine_algorithms(&g);
    assert_eq!(algorithms.len(), 9);

    // Freshly built.
    for alg in algorithms.iter() {
        check_batches_at_every_stage(alg.as_ref(), 100);
    }

    // After two update batches, re-check every (mid-maintenance) stage view.
    let mut gen_upd = UpdateGenerator::new(23);
    for round in 0..2u64 {
        let batch = gen_upd.generate(&g, 20);
        g.apply_batch(&batch);
        for alg in algorithms.iter_mut() {
            let publisher = SnapshotPublisher::new(alg.current_view());
            alg.apply_batch(&g, &batch, &publisher);
        }
        for alg in algorithms.iter() {
            check_batches_at_every_stage(alg.as_ref(), 200 + 10 * round);
        }
    }
}

#[test]
fn sessions_stay_pinned_to_their_snapshot_across_updates() {
    // A session opened before a batch keeps answering on the old weights
    // even while newer snapshots exist — the snapshot contract extended to
    // batch queries.
    let mut g = gen::grid(8, 8, gen::WeightRange::new(5, 25), 13);
    let mut idx = DchBaseline::build(&g);
    let old_graph = g.clone();
    let old_view = idx.current_view();
    let mut old_session = old_view.session();

    let batch = UpdateGenerator::new(7).generate(&g, 25);
    g.apply_batch(&batch);
    let publisher = SnapshotPublisher::new(idx.current_view());
    idx.apply_batch(&g, &batch, &publisher);

    let targets: Vec<VertexId> = (0..16).map(|i| VertexId(i * 4)).collect();
    let old_fan = old_session.one_to_many(VertexId(9), &targets);
    let new_view = publisher.snapshot();
    let mut new_session = new_view.session();
    let new_fan = new_session.one_to_many(VertexId(9), &targets);
    for (i, &t) in targets.iter().enumerate() {
        assert_eq!(
            old_fan[i],
            dijkstra_distance(&old_graph, VertexId(9), t),
            "pinned session drifted for target {t}"
        );
        assert_eq!(
            new_fan[i],
            dijkstra_distance(&g, VertexId(9), t),
            "fresh session wrong for target {t}"
        );
    }
}
