//! Correctness contract of the partition-sharded serving tier: every fleet
//! answer — local or cross-shard, for every algorithm of the registry —
//! must equal a global Dijkstra run on the fleet session's own epoch graph,
//! including while racing update batches are mid-maintenance.
//!
//! This is the sharded analogue of `tests/cross_algorithm_agreement.rs`:
//! the single-server tests pin one snapshot per index; here the pinned unit
//! is a *fleet epoch* (shard views + overlay + global graph), and exactness
//! additionally covers the boundary-detour concatenation of the cross-shard
//! query path (Theorem 2's overlay distance preservation).

use htsp::graph::{gen, EdgeUpdate, QuerySession, QuerySet, UpdateGenerator};
use htsp::search::dijkstra_distance;
use htsp::{AlgorithmKind, CoalescePolicy, FleetConfig, ShardedFleet};

/// Checks a sample of local and cross-shard pairs of `session` against
/// Dijkstra on the session's own epoch graph.
fn assert_session_exact(session: &mut htsp::FleetSession, queries: &QuerySet, label: &str) {
    for q in queries {
        let got = session.distance(q.source, q.target);
        let expect = dijkstra_distance(session.graph(), q.source, q.target);
        assert_eq!(
            got,
            expect,
            "{label} (epoch {}): d({:?}, {:?}) mismatch",
            session.fleet_version(),
            q.source,
            q.target
        );
    }
}

#[test]
fn every_algorithm_is_exact_across_shards_and_updates() {
    let g = gen::grid_with_diagonals(10, 10, gen::WeightRange::new(2, 60), 0.15, 77);
    for kind in AlgorithmKind::ALL {
        let config = FleetConfig::new(3, kind).with_coalesce(CoalescePolicy::manual());
        let fleet = ShardedFleet::start(&g, config);
        assert_eq!(fleet.num_shards(), 3);
        let mut gen_upd = UpdateGenerator::new(9);
        for round in 0..3u64 {
            let mut session = fleet.session();
            let queries = QuerySet::random(session.graph(), 25, 1000 + round);
            assert_session_exact(&mut session, &queries, &fleet.algorithm());

            let batch = {
                let s = fleet.session();
                gen_upd.generate(s.graph(), 15)
            };
            fleet.router().submit_all(batch.as_slice().iter().copied());
            fleet.flush().wait_applied();
        }
        fleet.shutdown();
    }
}

#[test]
fn one_to_many_and_matrix_match_global_dijkstra() {
    let g = gen::grid(9, 9, gen::WeightRange::new(1, 30), 5);
    let fleet = ShardedFleet::start(&g, FleetConfig::new(4, AlgorithmKind::Dch));
    let mut session = fleet.session();
    let queries = QuerySet::random(session.graph(), 12, 42);
    let sources: Vec<_> = queries.iter().map(|q| q.source).collect();
    let targets: Vec<_> = queries.iter().map(|q| q.target).collect();

    let fan = session.one_to_many(sources[0], &targets);
    for (&t, &d) in targets.iter().zip(&fan) {
        assert_eq!(d, dijkstra_distance(session.graph(), sources[0], t));
    }
    let m = session.matrix(&sources[..3], &targets);
    for (&s, row) in sources[..3].iter().zip(&m) {
        for (&t, &d) in targets.iter().zip(row) {
            assert_eq!(d, dijkstra_distance(session.graph(), s, t));
        }
    }
    fleet.shutdown();
}

/// Smoke path for serving a DIMACS network: write a grid as `.gr`, start a
/// fleet straight from the file, and check exactness + an update round.
#[test]
fn fleet_from_dimacs_serves_exactly() {
    let g = gen::grid(6, 6, gen::WeightRange::new(1, 20), 17);
    let dir = std::env::temp_dir().join("htsp_fleet_dimacs_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("grid.gr");
    htsp::graph::dimacs::write_gr_file(&g, &path).unwrap();

    let fleet = ShardedFleet::from_dimacs(&path, FleetConfig::new(2, AlgorithmKind::Dch))
        .expect("readable fixture");
    std::fs::remove_file(&path).ok();
    assert_eq!(fleet.num_shards(), 2);
    let mut session = fleet.session();
    assert_eq!(session.graph().num_vertices(), g.num_vertices());
    let queries = QuerySet::random(session.graph(), 15, 3);
    assert_session_exact(&mut session, &queries, "from_dimacs");

    let batch = {
        let s = fleet.session();
        UpdateGenerator::new(1).generate(s.graph(), 10)
    };
    fleet.router().submit_all(batch.as_slice().iter().copied());
    fleet.wait_idle();
    let mut after = fleet.session();
    let queries = QuerySet::random(after.graph(), 15, 4);
    assert_session_exact(&mut after, &queries, "from_dimacs after updates");
    fleet.shutdown();

    // The error path surfaces cleanly too.
    assert!(ShardedFleet::from_dimacs(dir.join("missing.gr"), FleetConfig::default()).is_err());
}

/// A pinned session must stay exact on *its* epoch graph even while racing
/// batches are being repaired underneath it, and tickets must report the
/// promised visibility components.
#[test]
fn pinned_epochs_stay_exact_under_racing_updates() {
    let g = gen::grid(12, 12, gen::WeightRange::new(2, 50), 21);
    let config = FleetConfig::new(4, AlgorithmKind::Dch).with_coalesce(CoalescePolicy::by_size(8));
    let fleet = ShardedFleet::start(&g, config);

    let mut gen_upd = UpdateGenerator::new(3);
    let batch = {
        let s = fleet.session();
        gen_upd.generate(s.graph(), 64)
    };
    // Pin a session on the pre-update epoch, then submit while querying.
    let mut session = fleet.session();
    let pinned = session.fleet_version();
    let tickets = fleet.router().submit_all(batch.as_slice().iter().copied());
    let queries = QuerySet::random(session.graph(), 30, 7);
    assert_session_exact(&mut session, &queries, "pinned mid-maintenance");
    assert_eq!(
        session.fleet_version(),
        pinned,
        "pinned session must not move"
    );

    for (ticket, update) in tickets.iter().zip(batch.iter()) {
        let vis = ticket.wait_visible();
        let (a, b) = {
            let s = fleet.session();
            s.graph().edge_endpoints(update.edge)
        };
        // Every update touches a shard or the overlay (or both); the ticket
        // must report at least one visibility component.
        assert!(
            vis.shard_version.is_some() || vis.fleet_version.is_some(),
            "update on edge ({a:?}, {b:?}) reported no visibility component"
        );
    }
    fleet.flush().wait_applied();
    assert!(fleet.epoch_version() > pinned);

    // A fresh session sees the fully updated weights.
    let mut fresh = fleet.session();
    let queries = QuerySet::random(fresh.graph(), 30, 8);
    assert_session_exact(&mut fresh, &queries, "post-update epoch");
    fleet.shutdown();
}

/// Updating *every* edge of the graph exercises both routing classes:
/// intra-partition updates (owned by one shard, `shard_version` set) and
/// inter-partition updates (owned by the overlay alone, epoch-only
/// visibility) — and the fleet must stay exact afterwards.
#[test]
fn intra_and_inter_partition_updates_are_served_exactly() {
    let g = gen::grid(8, 8, gen::WeightRange::new(2, 20), 11);
    let fleet = ShardedFleet::start(
        &g,
        FleetConfig::new(4, AlgorithmKind::BiDijkstra).with_coalesce(CoalescePolicy::manual()),
    );
    let updates: Vec<EdgeUpdate> = {
        let s = fleet.session();
        s.graph()
            .edges()
            .map(|(e, _, _, w)| EdgeUpdate::new(e, w, w + 5))
            .collect()
    };
    let tickets = fleet.router().submit_all(updates);
    fleet.flush();
    let mut intra = 0usize;
    let mut inter = 0usize;
    for ticket in &tickets {
        let vis = ticket.wait_visible();
        match vis.shard_version {
            Some(_) => intra += 1,
            None => {
                // Overlay-owned: visibility must come from the epoch.
                assert!(vis.fleet_version.is_some());
                inter += 1;
            }
        }
    }
    assert!(intra > 0, "a 4-shard grid has intra-partition edges");
    assert!(inter > 0, "a 4-shard grid has inter-partition edges");
    fleet.wait_idle();

    let mut after = fleet.session();
    let queries = QuerySet::random(after.graph(), 20, 13);
    assert_session_exact(&mut after, &queries, "after full-graph update");
    fleet.shutdown();
}
